#include "src/logic/term.h"

#include <functional>

namespace rwl::logic {

TermPtr Term::Variable(std::string name) {
  return TermPtr(new Term(Kind::kVariable, std::move(name), {}));
}

TermPtr Term::Constant(std::string name) {
  return TermPtr(new Term(Kind::kApply, std::move(name), {}));
}

TermPtr Term::Apply(std::string function, std::vector<TermPtr> args) {
  return TermPtr(new Term(Kind::kApply, std::move(function), std::move(args)));
}

bool Term::Equal(const TermPtr& a, const TermPtr& b) {
  if (a == b) return true;
  if (a == nullptr || b == nullptr) return false;
  if (a->kind_ != b->kind_ || a->name_ != b->name_) return false;
  if (a->args_.size() != b->args_.size()) return false;
  for (size_t i = 0; i < a->args_.size(); ++i) {
    if (!Equal(a->args_[i], b->args_[i])) return false;
  }
  return true;
}

size_t Term::Hash(const TermPtr& t) {
  if (t == nullptr) return 0;
  size_t h = std::hash<std::string>()(t->name_);
  h = h * 31 + static_cast<size_t>(t->kind_);
  for (const auto& a : t->args_) {
    h = h * 31 + Hash(a);
  }
  return h;
}

void Term::CollectVariables(std::set<std::string>* out) const {
  if (kind_ == Kind::kVariable) {
    out->insert(name_);
    return;
  }
  for (const auto& a : args_) a->CollectVariables(out);
}

void Term::CollectConstants(std::set<std::string>* out) const {
  if (kind_ == Kind::kApply) {
    if (args_.empty()) out->insert(name_);
    for (const auto& a : args_) a->CollectConstants(out);
  }
}

void Term::CollectFunctions(std::set<std::string>* out) const {
  if (kind_ == Kind::kApply) {
    out->insert(name_);
    for (const auto& a : args_) a->CollectFunctions(out);
  }
}

TermPtr Term::Substitute(
    const TermPtr& t,
    const std::vector<std::pair<std::string, TermPtr>>& subst) {
  if (t->kind_ == Kind::kVariable) {
    for (const auto& [var, replacement] : subst) {
      if (var == t->name_) return replacement;
    }
    return t;
  }
  bool changed = false;
  std::vector<TermPtr> new_args;
  new_args.reserve(t->args_.size());
  for (const auto& a : t->args_) {
    TermPtr na = Substitute(a, subst);
    changed = changed || (na != a);
    new_args.push_back(std::move(na));
  }
  if (!changed) return t;
  return Apply(t->name_, std::move(new_args));
}

}  // namespace rwl::logic
