#include "src/logic/term.h"

#include <functional>
#include <mutex>
#include <unordered_set>

#include "src/logic/intern.h"

namespace rwl::logic {
namespace {

size_t TermStructuralHash(const Term& t) {
  size_t h = HashMix(static_cast<size_t>(t.kind()) + 0x51);
  h = HashCombine(h, std::hash<std::string>()(t.name()));
  for (const auto& a : t.args()) h = HashCombine(h, a->hash());
  return h;
}

// Shallow: argument terms are canonical, so they compare by pointer.
bool TermShallowEqual(const Term& a, const Term& b) {
  return a.kind() == b.kind() && a.name() == b.name() && a.args() == b.args();
}

}  // namespace

class TermArena
    : public internal::NodeArena<TermArena, Term, TermPtr,
                                 TermStructuralHash, TermShallowEqual> {
 public:
  static TermArena& Instance() {
    static TermArena* arena = new TermArena();
    return *arena;
  }
  static void SetIdentity(Term* node, size_t hash, uint64_t id) {
    node->hash_ = hash;
    node->id_ = id;
  }
};

TermPtr Term::Intern(Kind kind, std::string name, std::vector<TermPtr> args) {
  return TermArena::Instance().Intern(
      Term(kind, std::move(name), std::move(args)));
}

void TermArenaStats(uint64_t* nodes, uint64_t* hits) {
  TermArena::Instance().Stats(nodes, hits);
}

TermPtr Term::Variable(std::string name) {
  return Intern(Kind::kVariable, std::move(name), {});
}

TermPtr Term::Constant(std::string name) {
  return Intern(Kind::kApply, std::move(name), {});
}

TermPtr Term::Apply(std::string function, std::vector<TermPtr> args) {
  return Intern(Kind::kApply, std::move(function), std::move(args));
}

bool Term::Equal(const TermPtr& a, const TermPtr& b) {
  return a == b;  // interning: structural equality is pointer identity
}

size_t Term::Hash(const TermPtr& t) { return t == nullptr ? 0 : t->hash_; }

void Term::CollectVariables(std::set<std::string>* out) const {
  if (kind_ == Kind::kVariable) {
    out->insert(name_);
    return;
  }
  for (const auto& a : args_) a->CollectVariables(out);
}

void Term::CollectConstants(std::set<std::string>* out) const {
  if (kind_ == Kind::kApply) {
    if (args_.empty()) out->insert(name_);
    for (const auto& a : args_) a->CollectConstants(out);
  }
}

void Term::CollectFunctions(std::set<std::string>* out) const {
  if (kind_ == Kind::kApply) {
    out->insert(name_);
    for (const auto& a : args_) a->CollectFunctions(out);
  }
}

TermPtr Term::Substitute(
    const TermPtr& t,
    const std::vector<std::pair<std::string, TermPtr>>& subst) {
  if (t->kind_ == Kind::kVariable) {
    for (const auto& [var, replacement] : subst) {
      if (var == t->name_) return replacement;
    }
    return t;
  }
  bool changed = false;
  std::vector<TermPtr> new_args;
  new_args.reserve(t->args_.size());
  for (const auto& a : t->args_) {
    TermPtr na = Substitute(a, subst);
    changed = changed || (na != a);
    new_args.push_back(std::move(na));
  }
  if (!changed) return t;
  return Apply(t->name_, std::move(new_args));
}

}  // namespace rwl::logic
