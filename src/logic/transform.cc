#include "src/logic/transform.h"

#include <algorithm>

#include "src/logic/vocabulary.h"

namespace rwl::logic {
namespace {

void CollectFreeVars(const FormulaPtr& f, std::set<std::string>* bound,
                     std::set<std::string>* out);

void CollectFreeVars(const ExprPtr& e, std::set<std::string>* bound,
                     std::set<std::string>* out) {
  if (e == nullptr) return;
  switch (e->kind()) {
    case Expr::Kind::kConstant:
      return;
    case Expr::Kind::kProportion:
    case Expr::Kind::kConditional: {
      std::vector<std::string> newly_bound;
      for (const auto& v : e->vars()) {
        if (bound->insert(v).second) newly_bound.push_back(v);
      }
      CollectFreeVars(e->body(), bound, out);
      if (e->cond() != nullptr) CollectFreeVars(e->cond(), bound, out);
      for (const auto& v : newly_bound) bound->erase(v);
      return;
    }
    case Expr::Kind::kAdd:
    case Expr::Kind::kSub:
    case Expr::Kind::kMul:
      CollectFreeVars(e->lhs(), bound, out);
      CollectFreeVars(e->rhs(), bound, out);
      return;
  }
}

void CollectTermFreeVars(const TermPtr& t, const std::set<std::string>& bound,
                         std::set<std::string>* out) {
  if (t->is_variable()) {
    if (bound.count(t->name()) == 0) out->insert(t->name());
    return;
  }
  for (const auto& a : t->args()) CollectTermFreeVars(a, bound, out);
}

void CollectFreeVars(const FormulaPtr& f, std::set<std::string>* bound,
                     std::set<std::string>* out) {
  if (f == nullptr) return;
  switch (f->kind()) {
    case Formula::Kind::kTrue:
    case Formula::Kind::kFalse:
      return;
    case Formula::Kind::kAtom:
    case Formula::Kind::kEqual:
      for (const auto& t : f->terms()) CollectTermFreeVars(t, *bound, out);
      return;
    case Formula::Kind::kNot:
      CollectFreeVars(f->left(), bound, out);
      return;
    case Formula::Kind::kAnd:
    case Formula::Kind::kOr:
    case Formula::Kind::kImplies:
    case Formula::Kind::kIff:
      CollectFreeVars(f->left(), bound, out);
      CollectFreeVars(f->right(), bound, out);
      return;
    case Formula::Kind::kForAll:
    case Formula::Kind::kExists: {
      bool newly = bound->insert(f->var()).second;
      CollectFreeVars(f->body(), bound, out);
      if (newly) bound->erase(f->var());
      return;
    }
    case Formula::Kind::kCompare:
      CollectFreeVars(f->expr_left(), bound, out);
      CollectFreeVars(f->expr_right(), bound, out);
      return;
  }
}

enum class SymbolClass { kConstant, kPredicate, kFunction, kAll };

void CollectTermSymbols(const TermPtr& t, SymbolClass cls,
                        std::set<std::string>* out) {
  if (t->is_variable()) return;
  bool is_const = t->args().empty();
  if (cls == SymbolClass::kAll ||
      (cls == SymbolClass::kConstant && is_const) ||
      (cls == SymbolClass::kFunction)) {
    out->insert(t->name());
  }
  for (const auto& a : t->args()) CollectTermSymbols(a, cls, out);
}

void CollectSymbols(const FormulaPtr& f, SymbolClass cls,
                    std::set<std::string>* out);

void CollectSymbols(const ExprPtr& e, SymbolClass cls,
                    std::set<std::string>* out) {
  if (e == nullptr) return;
  switch (e->kind()) {
    case Expr::Kind::kConstant:
      return;
    case Expr::Kind::kProportion:
    case Expr::Kind::kConditional:
      CollectSymbols(e->body(), cls, out);
      if (e->cond() != nullptr) CollectSymbols(e->cond(), cls, out);
      return;
    case Expr::Kind::kAdd:
    case Expr::Kind::kSub:
    case Expr::Kind::kMul:
      CollectSymbols(e->lhs(), cls, out);
      CollectSymbols(e->rhs(), cls, out);
      return;
  }
}

void CollectSymbols(const FormulaPtr& f, SymbolClass cls,
                    std::set<std::string>* out) {
  if (f == nullptr) return;
  switch (f->kind()) {
    case Formula::Kind::kTrue:
    case Formula::Kind::kFalse:
      return;
    case Formula::Kind::kAtom:
      if (cls == SymbolClass::kPredicate || cls == SymbolClass::kAll) {
        out->insert(f->predicate());
      }
      for (const auto& t : f->terms()) CollectTermSymbols(t, cls, out);
      return;
    case Formula::Kind::kEqual:
      for (const auto& t : f->terms()) CollectTermSymbols(t, cls, out);
      return;
    case Formula::Kind::kNot:
    case Formula::Kind::kForAll:
    case Formula::Kind::kExists:
      CollectSymbols(f->left(), cls, out);
      return;
    case Formula::Kind::kAnd:
    case Formula::Kind::kOr:
    case Formula::Kind::kImplies:
    case Formula::Kind::kIff:
      CollectSymbols(f->left(), cls, out);
      CollectSymbols(f->right(), cls, out);
      return;
    case Formula::Kind::kCompare:
      CollectSymbols(f->expr_left(), cls, out);
      CollectSymbols(f->expr_right(), cls, out);
      return;
  }
}

void CollectAllVariables(const FormulaPtr& f, std::set<std::string>* out);

void CollectAllVariables(const ExprPtr& e, std::set<std::string>* out) {
  if (e == nullptr) return;
  for (const auto& v : e->vars()) out->insert(v);
  CollectAllVariables(e->body(), out);
  CollectAllVariables(e->cond(), out);
  if (e->lhs() != nullptr) CollectAllVariables(e->lhs(), out);
  if (e->rhs() != nullptr) CollectAllVariables(e->rhs(), out);
}

void CollectTermVariables(const TermPtr& t, std::set<std::string>* out) {
  t->CollectVariables(out);
}

void CollectAllVariables(const FormulaPtr& f, std::set<std::string>* out) {
  if (f == nullptr) return;
  if (f->kind() == Formula::Kind::kForAll ||
      f->kind() == Formula::Kind::kExists) {
    out->insert(f->var());
  }
  for (const auto& t : f->terms()) CollectTermVariables(t, out);
  CollectAllVariables(f->left(), out);
  CollectAllVariables(f->right(), out);
  CollectAllVariables(f->expr_left(), out);
  CollectAllVariables(f->expr_right(), out);
}

}  // namespace

std::set<std::string> FreeVariables(const FormulaPtr& f) {
  std::set<std::string> bound, out;
  CollectFreeVars(f, &bound, &out);
  return out;
}

std::set<std::string> FreeVariables(const ExprPtr& e) {
  std::set<std::string> bound, out;
  CollectFreeVars(e, &bound, &out);
  return out;
}

std::set<std::string> ConstantsOf(const FormulaPtr& f) {
  std::set<std::string> out;
  CollectSymbols(f, SymbolClass::kConstant, &out);
  return out;
}

std::set<std::string> PredicatesOf(const FormulaPtr& f) {
  std::set<std::string> out;
  CollectSymbols(f, SymbolClass::kPredicate, &out);
  return out;
}

std::set<std::string> FunctionsOf(const FormulaPtr& f) {
  std::set<std::string> out;
  CollectSymbols(f, SymbolClass::kFunction, &out);
  return out;
}

std::set<std::string> SymbolsOf(const FormulaPtr& f) {
  std::set<std::string> out;
  CollectSymbols(f, SymbolClass::kAll, &out);
  return out;
}

bool MentionsConstant(const FormulaPtr& f, const std::string& constant) {
  return ConstantsOf(f).count(constant) > 0;
}

FormulaPtr SubstituteVariable(const FormulaPtr& f, const std::string& var,
                              const TermPtr& replacement) {
  return SubstituteVariables(f, {{var, replacement}});
}

namespace {

using Subst = std::vector<std::pair<std::string, TermPtr>>;

Subst Without(const Subst& subst, const std::vector<std::string>& shadowed) {
  Subst out;
  for (const auto& [var, term] : subst) {
    if (std::find(shadowed.begin(), shadowed.end(), var) == shadowed.end()) {
      out.emplace_back(var, term);
    }
  }
  return out;
}

FormulaPtr SubstImpl(const FormulaPtr& f, const Subst& subst);

ExprPtr SubstImpl(const ExprPtr& e, const Subst& subst) {
  if (e == nullptr || subst.empty()) return e;
  switch (e->kind()) {
    case Expr::Kind::kConstant:
      return e;
    case Expr::Kind::kProportion:
    case Expr::Kind::kConditional: {
      Subst inner = Without(subst, e->vars());
      if (inner.empty()) return e;
      FormulaPtr body = SubstImpl(e->body(), inner);
      if (e->kind() == Expr::Kind::kProportion) {
        return Expr::Proportion(body, e->vars());
      }
      return Expr::Conditional(body, SubstImpl(e->cond(), inner), e->vars());
    }
    case Expr::Kind::kAdd:
      return Expr::Add(SubstImpl(e->lhs(), subst), SubstImpl(e->rhs(), subst));
    case Expr::Kind::kSub:
      return Expr::Sub(SubstImpl(e->lhs(), subst), SubstImpl(e->rhs(), subst));
    case Expr::Kind::kMul:
      return Expr::Mul(SubstImpl(e->lhs(), subst), SubstImpl(e->rhs(), subst));
  }
  return e;
}

FormulaPtr SubstImpl(const FormulaPtr& f, const Subst& subst) {
  if (f == nullptr || subst.empty()) return f;
  switch (f->kind()) {
    case Formula::Kind::kTrue:
    case Formula::Kind::kFalse:
      return f;
    case Formula::Kind::kAtom: {
      std::vector<TermPtr> args;
      args.reserve(f->terms().size());
      for (const auto& t : f->terms()) args.push_back(Term::Substitute(t, subst));
      return Formula::Atom(f->predicate(), std::move(args));
    }
    case Formula::Kind::kEqual:
      return Formula::Equal(Term::Substitute(f->terms()[0], subst),
                            Term::Substitute(f->terms()[1], subst));
    case Formula::Kind::kNot:
      return Formula::Not(SubstImpl(f->left(), subst));
    case Formula::Kind::kAnd:
      return Formula::And(SubstImpl(f->left(), subst),
                          SubstImpl(f->right(), subst));
    case Formula::Kind::kOr:
      return Formula::Or(SubstImpl(f->left(), subst),
                         SubstImpl(f->right(), subst));
    case Formula::Kind::kImplies:
      return Formula::Implies(SubstImpl(f->left(), subst),
                              SubstImpl(f->right(), subst));
    case Formula::Kind::kIff:
      return Formula::Iff(SubstImpl(f->left(), subst),
                          SubstImpl(f->right(), subst));
    case Formula::Kind::kForAll:
    case Formula::Kind::kExists: {
      Subst inner = Without(subst, {f->var()});
      FormulaPtr body = SubstImpl(f->body(), inner);
      return f->kind() == Formula::Kind::kForAll
                 ? Formula::ForAll(f->var(), body)
                 : Formula::Exists(f->var(), body);
    }
    case Formula::Kind::kCompare:
      return Formula::Compare(SubstImpl(f->expr_left(), subst),
                              f->compare_op(),
                              SubstImpl(f->expr_right(), subst),
                              f->tolerance_index());
  }
  return f;
}

}  // namespace

ExprPtr SubstituteVariable(const ExprPtr& e, const std::string& var,
                           const TermPtr& replacement) {
  return SubstImpl(e, {{var, replacement}});
}

FormulaPtr SubstituteVariables(const FormulaPtr& f, const Subst& subst) {
  return SubstImpl(f, subst);
}

std::string FreshVariable(const FormulaPtr& f, const std::string& hint) {
  std::set<std::string> used;
  CollectAllVariables(f, &used);
  if (used.count(hint) == 0) return hint;
  for (int i = 1;; ++i) {
    std::string candidate = hint + std::to_string(i);
    if (used.count(candidate) == 0) return candidate;
  }
}

std::vector<FormulaPtr> Conjuncts(const FormulaPtr& f) {
  std::vector<FormulaPtr> out;
  std::vector<FormulaPtr> stack = {f};
  while (!stack.empty()) {
    FormulaPtr cur = stack.back();
    stack.pop_back();
    if (cur == nullptr) continue;
    if (cur->kind() == Formula::Kind::kAnd) {
      stack.push_back(cur->right());
      stack.push_back(cur->left());
    } else if (cur->kind() != Formula::Kind::kTrue) {
      out.push_back(cur);
    }
  }
  // Restore left-to-right order (stack reversed pushes keep order already).
  return out;
}

ConstantSplit SplitByConstants(const FormulaPtr& f) {
  std::vector<FormulaPtr> constant_free;
  std::vector<FormulaPtr> constant_dependent;
  for (const auto& conjunct : Conjuncts(f)) {
    if (ConstantsOf(conjunct).empty()) {
      constant_free.push_back(conjunct);
    } else {
      constant_dependent.push_back(conjunct);
    }
  }
  ConstantSplit split;
  split.constant_free = Formula::AndAll(constant_free);
  split.constant_dependent = Formula::AndAll(constant_dependent);
  return split;
}

namespace {

void RegisterTermSymbols(const TermPtr& t, Vocabulary* vocabulary) {
  if (t->kind() == Term::Kind::kApply) {
    vocabulary->AddFunction(t->name(), static_cast<int>(t->args().size()));
    for (const auto& a : t->args()) RegisterTermSymbols(a, vocabulary);
  }
}

void RegisterExprSymbols(const ExprPtr& e, Vocabulary* vocabulary) {
  if (e == nullptr) return;
  if (e->body() != nullptr) RegisterSymbols(e->body(), vocabulary);
  if (e->cond() != nullptr) RegisterSymbols(e->cond(), vocabulary);
  if (e->lhs() != nullptr) RegisterExprSymbols(e->lhs(), vocabulary);
  if (e->rhs() != nullptr) RegisterExprSymbols(e->rhs(), vocabulary);
}

}  // namespace

void RegisterSymbols(const FormulaPtr& f, Vocabulary* vocabulary) {
  if (f == nullptr) return;
  if (f->kind() == Formula::Kind::kAtom) {
    vocabulary->AddPredicate(f->predicate(),
                             static_cast<int>(f->terms().size()));
  }
  for (const auto& t : f->terms()) RegisterTermSymbols(t, vocabulary);
  if (f->left() != nullptr) RegisterSymbols(f->left(), vocabulary);
  if (f->right() != nullptr) RegisterSymbols(f->right(), vocabulary);
  RegisterExprSymbols(f->expr_left(), vocabulary);
  RegisterExprSymbols(f->expr_right(), vocabulary);
}

}  // namespace rwl::logic
