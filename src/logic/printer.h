// Pretty-printer for L≈, producing the textual syntax accepted by the
// parser (round-trip property: Parse(Print(f)) is structurally equal to f).
//
// Syntax summary (ASCII rendering of the paper's notation):
//   true, false
//   Bird(x), Likes(x, Fred), x = y
//   !f, (f & g), (f | g), (f => g), (f <=> g)
//   forall x. f        exists x. f
//   #(f)[x,y]          — ||f||_{x,y}
//   #(f ; g)[x]        — ||f | g||_x   (';' avoids clashing with '|' = or)
//   e ~=_2 0.8         — e ≈_2 0.8
//   e <~_1 0.3, e >~_1 0.3, e == 0.5, e <= 0.5, e >= 0.5
// Identifiers starting with an upper-case letter are constants / predicates /
// functions; lower-case identifiers are variables (the paper's convention).
#ifndef RWL_LOGIC_PRINTER_H_
#define RWL_LOGIC_PRINTER_H_

#include <string>

#include "src/logic/formula.h"

namespace rwl::logic {

std::string ToString(const FormulaPtr& f);
std::string ToString(const ExprPtr& e);
std::string ToString(const TermPtr& t);

}  // namespace rwl::logic

#endif  // RWL_LOGIC_PRINTER_H_
