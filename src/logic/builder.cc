#include "src/logic/builder.h"

#include "src/logic/transform.h"

namespace rwl::logic {

TermPtr V(const std::string& name) { return Term::Variable(name); }
TermPtr C(const std::string& name) { return Term::Constant(name); }

FormulaPtr P(const std::string& pred, const TermPtr& a) {
  return Formula::Atom(pred, {a});
}
FormulaPtr P(const std::string& pred, const TermPtr& a, const TermPtr& b) {
  return Formula::Atom(pred, {a, b});
}
FormulaPtr P(const std::string& pred, const TermPtr& a, const TermPtr& b,
             const TermPtr& c) {
  return Formula::Atom(pred, {a, b, c});
}
FormulaPtr P0(const std::string& pred) { return Formula::Atom(pred, {}); }

FormulaPtr Eq(const TermPtr& a, const TermPtr& b) {
  return Formula::Equal(a, b);
}

ExprPtr Prop(const FormulaPtr& body, const std::vector<std::string>& vars) {
  return Expr::Proportion(body, vars);
}

ExprPtr CondProp(const FormulaPtr& body, const FormulaPtr& cond,
                 const std::vector<std::string>& vars) {
  return Expr::Conditional(body, cond, vars);
}

ExprPtr Num(double value) { return Expr::Constant(value); }

FormulaPtr ApproxEq(const ExprPtr& e, double value, int tolerance_index) {
  return Formula::Compare(e, CompareOp::kApproxEq, Num(value),
                          tolerance_index);
}

FormulaPtr ApproxLeq(const ExprPtr& e, double value, int tolerance_index) {
  return Formula::Compare(e, CompareOp::kApproxLeq, Num(value),
                          tolerance_index);
}

FormulaPtr ApproxGeq(const ExprPtr& e, double value, int tolerance_index) {
  return Formula::Compare(e, CompareOp::kApproxGeq, Num(value),
                          tolerance_index);
}

FormulaPtr InInterval(double lo, int i, const ExprPtr& e, double hi, int j) {
  return Formula::And(ApproxGeq(e, lo, i), ApproxLeq(e, hi, j));
}

FormulaPtr Default(const FormulaPtr& antecedent, const FormulaPtr& consequent,
                   const std::vector<std::string>& vars, int tolerance_index) {
  return ApproxEq(CondProp(consequent, antecedent, vars), 1.0,
                  tolerance_index);
}

FormulaPtr ExistsUnique(const std::string& var, const FormulaPtr& body) {
  const std::string fresh = FreshVariable(body, var + "_u");
  FormulaPtr renamed = SubstituteVariable(body, var, Term::Variable(fresh));
  FormulaPtr uniqueness = Formula::ForAll(
      fresh, Formula::Implies(
                 renamed, Formula::Equal(Term::Variable(fresh),
                                         Term::Variable(var))));
  return Formula::Exists(var, Formula::And(body, uniqueness));
}

FormulaPtr ExactlyN(int n, const std::string& var, const FormulaPtr& body) {
  if (n == 0) return Formula::Not(Formula::Exists(var, body));
  // Witness variables w1..wn.
  std::vector<std::string> witnesses;
  witnesses.reserve(n);
  for (int i = 0; i < n; ++i) {
    witnesses.push_back(var + "_w" + std::to_string(i + 1));
  }
  std::vector<FormulaPtr> parts;
  // Each witness satisfies body.
  for (const auto& w : witnesses) {
    parts.push_back(SubstituteVariable(body, var, Term::Variable(w)));
  }
  // Witnesses pairwise distinct.
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      parts.push_back(Formula::Not(Formula::Equal(
          Term::Variable(witnesses[i]), Term::Variable(witnesses[j]))));
    }
  }
  // Every satisfier is one of the witnesses.
  std::vector<FormulaPtr> one_of;
  for (const auto& w : witnesses) {
    one_of.push_back(
        Formula::Equal(Term::Variable(var), Term::Variable(w)));
  }
  parts.push_back(
      Formula::ForAll(var, Formula::Implies(body, Formula::OrAll(one_of))));

  FormulaPtr result = Formula::AndAll(parts);
  for (int i = n - 1; i >= 0; --i) {
    result = Formula::Exists(witnesses[i], result);
  }
  return result;
}

}  // namespace rwl::logic
