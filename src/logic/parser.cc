#include "src/logic/parser.h"

#include <cctype>
#include <cstdlib>
#include <vector>

#include "src/logic/builder.h"

namespace rwl::logic {
namespace {

// Token kinds produced by the lexer.
enum class Tok {
  kEnd,
  kIdent,     // variable or symbol name
  kNumber,
  kLParen,    // (
  kRParen,    // )
  kLBracket,  // [
  kRBracket,  // ]
  kComma,
  kDot,
  kSemicolon,
  kBang,      // !
  kAmp,       // &
  kPipe,      // |
  kImplies,   // =>
  kIff,       // <=>
  kEqual,     // =
  kNotEqual,  // !=
  kApproxEq,  // ~=
  kApproxLeq, // <~
  kApproxGeq, // >~
  kEqEq,      // ==
  kLeq,       // <=
  kGeq,       // >=
  kPlus,
  kMinus,
  kStar,
  kHash,      // #
  kUnderscore,
  kError,
};

struct Token {
  Tok kind = Tok::kEnd;
  std::string text;
  double number = 0.0;
  size_t offset = 0;
};

class Lexer {
 public:
  explicit Lexer(std::string_view input) : input_(input) { Advance(); }

  const Token& Peek() const { return current_; }

  Token Take() {
    Token t = current_;
    Advance();
    return t;
  }

 private:
  void Advance() {
    while (pos_ < input_.size() &&
           std::isspace(static_cast<unsigned char>(input_[pos_]))) {
      ++pos_;
    }
    // Line comments: "//" to end of line.
    if (pos_ + 1 < input_.size() && input_[pos_] == '/' &&
        input_[pos_ + 1] == '/') {
      while (pos_ < input_.size() && input_[pos_] != '\n') ++pos_;
      Advance();
      return;
    }
    current_ = Token();
    current_.offset = pos_;
    if (pos_ >= input_.size()) {
      current_.kind = Tok::kEnd;
      return;
    }
    char c = input_[pos_];
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t start = pos_;
      while (pos_ < input_.size() &&
             (std::isalnum(static_cast<unsigned char>(input_[pos_])) ||
              input_[pos_] == '_' || input_[pos_] == '\'')) {
        ++pos_;
      }
      current_.kind = Tok::kIdent;
      current_.text = std::string(input_.substr(start, pos_ - start));
      return;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      size_t start = pos_;
      while (pos_ < input_.size() &&
             (std::isdigit(static_cast<unsigned char>(input_[pos_])) ||
              input_[pos_] == '.')) {
        ++pos_;
      }
      // Don't swallow a trailing '.' that is actually a quantifier dot;
      // numbers never end in '.' in this grammar.
      if (input_[pos_ - 1] == '.') --pos_;
      current_.kind = Tok::kNumber;
      std::string text(input_.substr(start, pos_ - start));
      current_.number = std::strtod(text.c_str(), nullptr);
      current_.text = text;
      return;
    }
    auto two = [&](char a, char b) {
      return c == a && pos_ + 1 < input_.size() && input_[pos_ + 1] == b;
    };
    auto three = [&](char a, char b, char d) {
      return c == a && pos_ + 2 < input_.size() && input_[pos_ + 1] == b &&
             input_[pos_ + 2] == d;
    };
    if (three('<', '=', '>')) {
      current_.kind = Tok::kIff;
      pos_ += 3;
      return;
    }
    if (two('=', '>')) { current_.kind = Tok::kImplies; pos_ += 2; return; }
    if (two('=', '=')) { current_.kind = Tok::kEqEq; pos_ += 2; return; }
    if (two('<', '=')) { current_.kind = Tok::kLeq; pos_ += 2; return; }
    if (two('>', '=')) { current_.kind = Tok::kGeq; pos_ += 2; return; }
    if (two('~', '=')) { current_.kind = Tok::kApproxEq; pos_ += 2; return; }
    if (two('<', '~')) { current_.kind = Tok::kApproxLeq; pos_ += 2; return; }
    if (two('>', '~')) { current_.kind = Tok::kApproxGeq; pos_ += 2; return; }
    if (two('!', '=')) { current_.kind = Tok::kNotEqual; pos_ += 2; return; }
    switch (c) {
      case '(': current_.kind = Tok::kLParen; break;
      case ')': current_.kind = Tok::kRParen; break;
      case '[': current_.kind = Tok::kLBracket; break;
      case ']': current_.kind = Tok::kRBracket; break;
      case ',': current_.kind = Tok::kComma; break;
      case '.': current_.kind = Tok::kDot; break;
      case ';': current_.kind = Tok::kSemicolon; break;
      case '!': current_.kind = Tok::kBang; break;
      case '&': current_.kind = Tok::kAmp; break;
      case '|': current_.kind = Tok::kPipe; break;
      case '=': current_.kind = Tok::kEqual; break;
      case '+': current_.kind = Tok::kPlus; break;
      case '-': current_.kind = Tok::kMinus; break;
      case '*': current_.kind = Tok::kStar; break;
      case '#': current_.kind = Tok::kHash; break;
      default:
        current_.kind = Tok::kError;
        current_.text = std::string(1, c);
        break;
    }
    ++pos_;
  }

  std::string_view input_;
  size_t pos_ = 0;
  Token current_;
};

bool IsUpper(const std::string& s) {
  return !s.empty() && std::isupper(static_cast<unsigned char>(s[0]));
}

class Parser {
 public:
  explicit Parser(std::string_view input) : lexer_(input) {}

  FormulaPtr Parse(std::string* error, size_t* error_offset) {
    FormulaPtr f = ParseIff();
    if (f == nullptr || !error_.empty()) {
      *error = error_.empty() ? "parse error" : error_;
      *error_offset = error_offset_;
      return nullptr;
    }
    if (lexer_.Peek().kind != Tok::kEnd) {
      *error = "unexpected trailing input";
      *error_offset = lexer_.Peek().offset;
      return nullptr;
    }
    return f;
  }

 private:
  FormulaPtr Fail(const std::string& message) {
    if (error_.empty()) {
      error_ = message;
      error_offset_ = lexer_.Peek().offset;
    }
    return nullptr;
  }

  bool Expect(Tok kind, const char* what) {
    if (lexer_.Peek().kind != kind) {
      Fail(std::string("expected ") + what);
      return false;
    }
    lexer_.Take();
    return true;
  }

  // iff := implies ('<=>' implies)*        (left associative)
  FormulaPtr ParseIff() {
    FormulaPtr lhs = ParseImplies();
    if (lhs == nullptr) return nullptr;
    while (lexer_.Peek().kind == Tok::kIff) {
      lexer_.Take();
      FormulaPtr rhs = ParseImplies();
      if (rhs == nullptr) return nullptr;
      lhs = Formula::Iff(lhs, rhs);
    }
    return lhs;
  }

  // implies := or ('=>' implies)?          (right associative)
  FormulaPtr ParseImplies() {
    FormulaPtr lhs = ParseOr();
    if (lhs == nullptr) return nullptr;
    if (lexer_.Peek().kind == Tok::kImplies) {
      lexer_.Take();
      FormulaPtr rhs = ParseImplies();
      if (rhs == nullptr) return nullptr;
      return Formula::Implies(lhs, rhs);
    }
    return lhs;
  }

  FormulaPtr ParseOr() {
    FormulaPtr lhs = ParseAnd();
    if (lhs == nullptr) return nullptr;
    while (lexer_.Peek().kind == Tok::kPipe) {
      lexer_.Take();
      FormulaPtr rhs = ParseAnd();
      if (rhs == nullptr) return nullptr;
      lhs = Formula::Or(lhs, rhs);
    }
    return lhs;
  }

  FormulaPtr ParseAnd() {
    FormulaPtr lhs = ParseUnary();
    if (lhs == nullptr) return nullptr;
    while (lexer_.Peek().kind == Tok::kAmp) {
      lexer_.Take();
      FormulaPtr rhs = ParseUnary();
      if (rhs == nullptr) return nullptr;
      lhs = Formula::And(lhs, rhs);
    }
    return lhs;
  }

  FormulaPtr ParseUnary() {
    const Token& t = lexer_.Peek();
    if (t.kind == Tok::kBang) {
      lexer_.Take();
      FormulaPtr body = ParseUnary();
      if (body == nullptr) return nullptr;
      return Formula::Not(body);
    }
    if (t.kind == Tok::kIdent && (t.text == "forall" || t.text == "exists")) {
      bool is_forall = t.text == "forall";
      lexer_.Take();
      bool unique = false;
      if (!is_forall && lexer_.Peek().kind == Tok::kBang) {
        lexer_.Take();
        unique = true;
      }
      if (lexer_.Peek().kind != Tok::kIdent) return Fail("expected variable");
      std::string var = lexer_.Take().text;
      if (!Expect(Tok::kDot, "'.' after quantified variable")) return nullptr;
      FormulaPtr body = ParseUnary();
      if (body == nullptr) return nullptr;
      if (is_forall) return Formula::ForAll(var, body);
      if (!unique) return Formula::Exists(var, body);
      return ExistsUnique(var, body);
    }
    return ParsePrimary();
  }

  // primary := 'true' | 'false' | '(' iff ')' | atom | term (=|!=) term
  //          | compare-formula starting with an expression
  FormulaPtr ParsePrimary() {
    const Token& t = lexer_.Peek();
    if (t.kind == Tok::kIdent && t.text == "true") {
      lexer_.Take();
      return Formula::True();
    }
    if (t.kind == Tok::kIdent && t.text == "false") {
      lexer_.Take();
      return Formula::False();
    }
    if (t.kind == Tok::kLParen) {
      // Either a parenthesized formula or a parenthesized proportion
      // expression opening a comparison (e.g. "((a + b) ~= 0.5)").  Try the
      // formula reading first; on failure, rewind and parse a comparison.
      Lexer saved = lexer_;
      std::string saved_error = error_;
      size_t saved_offset = error_offset_;
      lexer_.Take();
      FormulaPtr inner = ParseIff();
      if (inner != nullptr && lexer_.Peek().kind == Tok::kRParen) {
        lexer_.Take();
        return inner;
      }
      lexer_ = saved;
      error_ = saved_error;
      error_offset_ = saved_offset;
      return ParseCompare();
    }
    if (t.kind == Tok::kHash || t.kind == Tok::kNumber) {
      return ParseCompare();
    }
    if (t.kind == Tok::kIdent) {
      // term (=|!=) term, or an atom.
      TermPtr lhs = ParseTerm();
      if (lhs == nullptr) return nullptr;
      if (lexer_.Peek().kind == Tok::kEqual) {
        lexer_.Take();
        TermPtr rhs = ParseTerm();
        if (rhs == nullptr) return nullptr;
        return Formula::Equal(lhs, rhs);
      }
      if (lexer_.Peek().kind == Tok::kNotEqual) {
        lexer_.Take();
        TermPtr rhs = ParseTerm();
        if (rhs == nullptr) return nullptr;
        return Formula::Not(Formula::Equal(lhs, rhs));
      }
      // Must be an atom: an upper-case application (or bare proposition).
      if (lhs->kind() == Term::Kind::kApply) {
        return Formula::Atom(lhs->name(), lhs->args());
      }
      return Fail("variable '" + lhs->name() + "' used as a formula");
    }
    return Fail("expected a formula");
  }

  // compare := expr op expr, where op carries an optional _i tolerance index.
  FormulaPtr ParseCompare() {
    ExprPtr lhs = ParseExpr();
    if (lhs == nullptr) return nullptr;
    Tok op_tok = lexer_.Peek().kind;
    CompareOp op;
    switch (op_tok) {
      case Tok::kApproxEq: op = CompareOp::kApproxEq; break;
      case Tok::kApproxLeq: op = CompareOp::kApproxLeq; break;
      case Tok::kApproxGeq: op = CompareOp::kApproxGeq; break;
      case Tok::kEqEq: op = CompareOp::kEq; break;
      case Tok::kLeq: op = CompareOp::kLeq; break;
      case Tok::kGeq: op = CompareOp::kGeq; break;
      default:
        Fail("expected a comparison operator");
        return nullptr;
    }
    lexer_.Take();
    int tolerance_index = 1;
    // Optional tolerance subscript: _<int> immediately after ~=, <~, >~.
    if (IsApproximate(op) && lexer_.Peek().kind == Tok::kIdent &&
        lexer_.Peek().text[0] == '_') {
      std::string sub = lexer_.Take().text.substr(1);
      tolerance_index = std::atoi(sub.c_str());
      if (tolerance_index <= 0) return Fail("bad tolerance subscript");
    }
    ExprPtr rhs = ParseExpr();
    if (rhs == nullptr) return nullptr;
    return Formula::Compare(lhs, op, rhs, tolerance_index);
  }

  // expr := mul (('+'|'-') mul)*
  ExprPtr ParseExpr() {
    ExprPtr lhs = ParseMul();
    if (lhs == nullptr) return nullptr;
    while (lexer_.Peek().kind == Tok::kPlus ||
           lexer_.Peek().kind == Tok::kMinus) {
      bool add = lexer_.Take().kind == Tok::kPlus;
      ExprPtr rhs = ParseMul();
      if (rhs == nullptr) return nullptr;
      lhs = add ? Expr::Add(lhs, rhs) : Expr::Sub(lhs, rhs);
    }
    return lhs;
  }

  ExprPtr ParseMul() {
    ExprPtr lhs = ParseExprPrimary();
    if (lhs == nullptr) return nullptr;
    while (lexer_.Peek().kind == Tok::kStar) {
      lexer_.Take();
      ExprPtr rhs = ParseExprPrimary();
      if (rhs == nullptr) return nullptr;
      lhs = Expr::Mul(lhs, rhs);
    }
    return lhs;
  }

  // expr-primary := number | '#' '(' formula (';' formula)? ')' '[' vars ']'
  //               | '(' expr ')'
  ExprPtr ParseExprPrimary() {
    const Token& t = lexer_.Peek();
    if (t.kind == Tok::kNumber) {
      return Expr::Constant(lexer_.Take().number);
    }
    if (t.kind == Tok::kLParen) {
      lexer_.Take();
      ExprPtr inner = ParseExpr();
      if (inner == nullptr) return nullptr;
      if (!Expect(Tok::kRParen, "')'")) return nullptr;
      return inner;
    }
    if (t.kind == Tok::kHash) {
      lexer_.Take();
      if (!Expect(Tok::kLParen, "'(' after '#'")) return nullptr;
      FormulaPtr body = ParseIff();
      if (body == nullptr) return nullptr;
      FormulaPtr cond;
      if (lexer_.Peek().kind == Tok::kSemicolon) {
        lexer_.Take();
        cond = ParseIff();
        if (cond == nullptr) return nullptr;
      }
      if (!Expect(Tok::kRParen, "')'")) return nullptr;
      if (!Expect(Tok::kLBracket, "'[' before proportion variables")) {
        return nullptr;
      }
      std::vector<std::string> vars;
      while (true) {
        if (lexer_.Peek().kind != Tok::kIdent) {
          Fail("expected proportion variable");
          return nullptr;
        }
        vars.push_back(lexer_.Take().text);
        if (lexer_.Peek().kind == Tok::kComma) {
          lexer_.Take();
          continue;
        }
        break;
      }
      if (!Expect(Tok::kRBracket, "']'")) return nullptr;
      if (cond == nullptr) return Expr::Proportion(body, vars);
      return Expr::Conditional(body, cond, vars);
    }
    Fail("expected a proportion expression");
    return nullptr;
  }

  // term := ident ('(' term (',' term)* ')')?
  TermPtr ParseTerm() {
    if (lexer_.Peek().kind != Tok::kIdent) {
      Fail("expected a term");
      return nullptr;
    }
    Token name = lexer_.Take();
    if (lexer_.Peek().kind == Tok::kLParen) {
      lexer_.Take();
      std::vector<TermPtr> args;
      while (true) {
        TermPtr arg = ParseTerm();
        if (arg == nullptr) return nullptr;
        args.push_back(arg);
        if (lexer_.Peek().kind == Tok::kComma) {
          lexer_.Take();
          continue;
        }
        break;
      }
      if (!Expect(Tok::kRParen, "')'")) return nullptr;
      return Term::Apply(name.text, std::move(args));
    }
    if (IsUpper(name.text)) return Term::Constant(name.text);
    return Term::Variable(name.text);
  }

  Lexer lexer_;
  std::string error_;
  size_t error_offset_ = 0;
};

}  // namespace

ParseResult ParseFormula(std::string_view input) {
  Parser parser(input);
  ParseResult result;
  result.formula = parser.Parse(&result.error, &result.error_offset);
  if (result.formula != nullptr) result.error.clear();
  return result;
}

ParseResult ParseKnowledgeBase(std::string_view input) {
  // The whole text is a single conjunction: formulas separated by newlines.
  // We simply parse each non-comment, non-empty line and conjoin.
  ParseResult result;
  std::vector<FormulaPtr> conjuncts;
  size_t line_start = 0;
  while (line_start <= input.size()) {
    size_t line_end = input.find('\n', line_start);
    if (line_end == std::string_view::npos) line_end = input.size();
    std::string_view line = input.substr(line_start, line_end - line_start);
    // Trim.
    size_t b = line.find_first_not_of(" \t\r");
    if (b != std::string_view::npos) {
      std::string_view body = line.substr(b);
      if (body.size() >= 2 && body.substr(0, 2) == "//") {
        // comment line
      } else {
        ParseResult one = ParseFormula(body);
        if (!one.ok()) {
          one.error_offset += line_start + b;
          return one;
        }
        conjuncts.push_back(one.formula);
      }
    }
    if (line_end == input.size()) break;
    line_start = line_end + 1;
  }
  result.formula = Formula::AndAll(conjuncts);
  return result;
}

}  // namespace rwl::logic
