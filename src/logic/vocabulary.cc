#include "src/logic/vocabulary.h"

#include <cstdio>
#include <cstdlib>
#include <functional>

#include "src/logic/intern.h"

namespace rwl::logic {
namespace {

[[noreturn]] void Die(const std::string& message) {
  std::fprintf(stderr, "rwl vocabulary error: %s\n", message.c_str());
  std::abort();
}

}  // namespace

int Vocabulary::AddPredicate(const std::string& name, int arity) {
  auto it = predicate_index_.find(name);
  if (it != predicate_index_.end()) {
    if (predicates_[it->second].arity != arity) {
      Die("predicate '" + name + "' re-declared with different arity");
    }
    return it->second;
  }
  if (function_index_.count(name) > 0) {
    Die("symbol '" + name + "' already declared as a function");
  }
  PredicateSymbol sym;
  sym.id = static_cast<int>(predicates_.size());
  sym.name = name;
  sym.arity = arity;
  predicates_.push_back(sym);
  predicate_index_[name] = sym.id;
  return sym.id;
}

int Vocabulary::AddFunction(const std::string& name, int arity) {
  auto it = function_index_.find(name);
  if (it != function_index_.end()) {
    if (functions_[it->second].arity != arity) {
      Die("function '" + name + "' re-declared with different arity");
    }
    return it->second;
  }
  if (predicate_index_.count(name) > 0) {
    Die("symbol '" + name + "' already declared as a predicate");
  }
  FunctionSymbol sym;
  sym.id = static_cast<int>(functions_.size());
  sym.name = name;
  sym.arity = arity;
  functions_.push_back(sym);
  function_index_[name] = sym.id;
  return sym.id;
}

std::optional<PredicateSymbol> Vocabulary::FindPredicate(
    const std::string& name) const {
  auto it = predicate_index_.find(name);
  if (it == predicate_index_.end()) return std::nullopt;
  return predicates_[it->second];
}

std::optional<FunctionSymbol> Vocabulary::FindFunction(
    const std::string& name) const {
  auto it = function_index_.find(name);
  if (it == function_index_.end()) return std::nullopt;
  return functions_[it->second];
}

std::vector<FunctionSymbol> Vocabulary::Constants() const {
  std::vector<FunctionSymbol> result;
  for (const auto& f : functions_) {
    if (f.arity == 0) result.push_back(f);
  }
  return result;
}

uint64_t Vocabulary::Fingerprint() const {
  uint64_t h = HashMix(predicates_.size() * 31 + functions_.size());
  for (const auto& p : predicates_) {
    h = HashCombine(h, std::hash<std::string>{}(p.name));
    h = HashCombine(h, static_cast<uint64_t>(p.arity));
  }
  for (const auto& f : functions_) {
    h = HashCombine(h, std::hash<std::string>{}(f.name));
    h = HashCombine(h, static_cast<uint64_t>(f.arity) + 0x80000000ull);
  }
  return h;
}

bool Vocabulary::IsUnaryRelational() const {
  for (const auto& p : predicates_) {
    if (p.arity != 1) return false;
  }
  for (const auto& f : functions_) {
    if (f.arity != 0) return false;
  }
  return true;
}

}  // namespace rwl::logic
