#include "src/logic/classalg.h"

#include <bit>

namespace rwl::logic {

ClassUniverse::ClassUniverse(std::vector<std::string> predicates)
    : predicates_(std::move(predicates)) {}

int ClassUniverse::PredicateIndex(const std::string& name) const {
  for (size_t i = 0; i < predicates_.size(); ++i) {
    if (predicates_[i] == name) return static_cast<int>(i);
  }
  return -1;
}

AtomSet::AtomSet(int num_atoms, bool all) : num_atoms_(num_atoms) {
  int words = (num_atoms + 63) / 64;
  words_.assign(words, all ? ~uint64_t{0} : 0);
  if (all && num_atoms % 64 != 0) {
    // Clear the bits past num_atoms in the last word.
    words_.back() &= (uint64_t{1} << (num_atoms % 64)) - 1;
  }
}

AtomSet AtomSet::OfPredicate(const ClassUniverse& u, int pred_index) {
  AtomSet s(u.num_atoms());
  for (int atom = 0; atom < u.num_atoms(); ++atom) {
    if (ClassUniverse::AtomHas(atom, pred_index)) s.Set(atom, true);
  }
  return s;
}

bool AtomSet::Get(int atom) const {
  return (words_[atom / 64] >> (atom % 64)) & 1;
}

void AtomSet::Set(int atom, bool value) {
  uint64_t mask = uint64_t{1} << (atom % 64);
  if (value) {
    words_[atom / 64] |= mask;
  } else {
    words_[atom / 64] &= ~mask;
  }
}

AtomSet AtomSet::Intersect(const AtomSet& other) const {
  AtomSet out(num_atoms_);
  for (size_t i = 0; i < words_.size(); ++i) {
    out.words_[i] = words_[i] & other.words_[i];
  }
  return out;
}

AtomSet AtomSet::Union(const AtomSet& other) const {
  AtomSet out(num_atoms_);
  for (size_t i = 0; i < words_.size(); ++i) {
    out.words_[i] = words_[i] | other.words_[i];
  }
  return out;
}

AtomSet AtomSet::Complement() const {
  AtomSet out(num_atoms_);
  for (size_t i = 0; i < words_.size(); ++i) out.words_[i] = ~words_[i];
  if (num_atoms_ % 64 != 0) {
    out.words_.back() &= (uint64_t{1} << (num_atoms_ % 64)) - 1;
  }
  return out;
}

bool AtomSet::Empty() const {
  for (uint64_t w : words_) {
    if (w != 0) return false;
  }
  return true;
}

int AtomSet::Count() const {
  int count = 0;
  for (uint64_t w : words_) count += std::popcount(w);
  return count;
}

bool AtomSet::SubsetOf(const AtomSet& a, const AtomSet& b,
                       const AtomSet& allowed) {
  return a.Intersect(allowed).Intersect(b.Complement()).Empty();
}

bool AtomSet::Disjoint(const AtomSet& a, const AtomSet& b,
                       const AtomSet& allowed) {
  return a.Intersect(b).Intersect(allowed).Empty();
}

bool AtomSet::Equal(const AtomSet& a, const AtomSet& b) {
  return a.num_atoms_ == b.num_atoms_ && a.words_ == b.words_;
}

std::vector<int> AtomSet::Atoms() const {
  std::vector<int> out;
  for (int i = 0; i < num_atoms_; ++i) {
    if (Get(i)) out.push_back(i);
  }
  return out;
}

namespace {

std::optional<AtomSet> Compile(const ClassUniverse& u, const FormulaPtr& f,
                               const TermPtr& subject) {
  switch (f->kind()) {
    case Formula::Kind::kTrue:
      return AtomSet::All(u);
    case Formula::Kind::kFalse:
      return AtomSet::None(u);
    case Formula::Kind::kAtom: {
      if (f->terms().size() != 1) return std::nullopt;
      if (!Term::Equal(f->terms()[0], subject)) return std::nullopt;
      int index = u.PredicateIndex(f->predicate());
      if (index < 0) return std::nullopt;
      return AtomSet::OfPredicate(u, index);
    }
    case Formula::Kind::kNot: {
      auto inner = Compile(u, f->body(), subject);
      if (!inner) return std::nullopt;
      return inner->Complement();
    }
    case Formula::Kind::kAnd:
    case Formula::Kind::kOr:
    case Formula::Kind::kImplies:
    case Formula::Kind::kIff: {
      auto lhs = Compile(u, f->left(), subject);
      auto rhs = Compile(u, f->right(), subject);
      if (!lhs || !rhs) return std::nullopt;
      switch (f->kind()) {
        case Formula::Kind::kAnd:
          return lhs->Intersect(*rhs);
        case Formula::Kind::kOr:
          return lhs->Union(*rhs);
        case Formula::Kind::kImplies:
          return lhs->Complement().Union(*rhs);
        default:  // kIff
          return lhs->Intersect(*rhs).Union(
              lhs->Complement().Intersect(rhs->Complement()));
      }
    }
    default:
      return std::nullopt;  // quantifiers / equality / proportions
  }
}

}  // namespace

std::optional<AtomSet> CompileClass(const ClassUniverse& u, const FormulaPtr& f,
                                    const TermPtr& subject) {
  return Compile(u, f, subject);
}

bool Taxonomy::Absorb(const FormulaPtr& conjunct) {
  if (conjunct->kind() != Formula::Kind::kForAll) return false;
  TermPtr subject = Term::Variable(conjunct->var());
  auto atoms = CompileClass(*universe_, conjunct->body(), subject);
  if (!atoms) return false;
  allowed_ = allowed_.Intersect(*atoms);
  return true;
}

}  // namespace rwl::logic
