#include "src/maxent/solver.h"

#include <algorithm>
#include <cmath>

namespace rwl::maxent {
namespace {

double PenaltyObjective(const Problem& problem, const std::vector<double>& p,
                        double lambda, double* max_violation) {
  double objective = Entropy(p);
  double worst = 0.0;
  for (const auto& c : problem.constraints) {
    double dot = 0.0;
    for (int i = 0; i < problem.dim; ++i) dot += c.coef[i] * p[i];
    double violation = dot - c.bound;
    if (violation > 0) {
      objective -= lambda * violation * violation;
      worst = std::max(worst, violation);
    }
  }
  if (max_violation != nullptr) *max_violation = worst;
  return objective;
}

void Gradient(const Problem& problem, const std::vector<double>& p,
              double lambda, std::vector<double>* grad) {
  grad->assign(problem.dim, 0.0);
  for (int i = 0; i < problem.dim; ++i) {
    double pi = std::max(p[i], 1e-300);
    (*grad)[i] = -(1.0 + std::log(pi));
  }
  for (const auto& c : problem.constraints) {
    double dot = 0.0;
    for (int i = 0; i < problem.dim; ++i) dot += c.coef[i] * p[i];
    double violation = dot - c.bound;
    if (violation > 0) {
      for (int i = 0; i < problem.dim; ++i) {
        (*grad)[i] -= 2.0 * lambda * violation * c.coef[i];
      }
    }
  }
}

// One multiplicative (mirror-descent) step; returns the candidate point.
std::vector<double> Step(const Problem& problem, const std::vector<double>& p,
                         const std::vector<double>& grad, double step,
                         const std::vector<bool>& support) {
  std::vector<double> log_p(problem.dim, -1e9);
  double max_lp = -1e18;
  for (int i = 0; i < problem.dim; ++i) {
    if (!support[i]) continue;
    log_p[i] = std::log(std::max(p[i], 1e-300)) + step * grad[i];
    max_lp = std::max(max_lp, log_p[i]);
  }
  std::vector<double> out(problem.dim, 0.0);
  double total = 0.0;
  for (int i = 0; i < problem.dim; ++i) {
    if (!support[i]) continue;
    out[i] = std::exp(log_p[i] - max_lp);
    total += out[i];
  }
  for (int i = 0; i < problem.dim; ++i) out[i] /= total;
  return out;
}

}  // namespace

double Entropy(const std::vector<double>& p) {
  double h = 0.0;
  for (double v : p) {
    if (v > 0) h -= v * std::log(v);
  }
  return h;
}

Solution Solve(const Problem& problem, const SolverOptions& options) {
  Solution solution;
  std::vector<bool> support = problem.support;
  if (support.empty()) support.assign(problem.dim, true);
  int support_size = 0;
  for (bool s : support) support_size += s ? 1 : 0;
  if (support_size == 0) return solution;  // infeasible: empty simplex

  // Uniform start on the support.
  std::vector<double> p(problem.dim, 0.0);
  for (int i = 0; i < problem.dim; ++i) {
    if (support[i]) p[i] = 1.0 / support_size;
  }

  std::vector<double> grad;
  int iterations = 0;
  double lambda = options.initial_penalty;
  for (int stage = 0; stage < options.penalty_stages; ++stage) {
    double step = options.initial_step;
    double current = PenaltyObjective(problem, p, lambda, nullptr);
    for (int it = 0; it < options.inner_iterations; ++it) {
      ++iterations;
      Gradient(problem, p, lambda, &grad);
      // Backtracking on the mirror step.
      bool improved = false;
      for (int bt = 0; bt < 30; ++bt) {
        std::vector<double> candidate = Step(problem, p, grad, step, support);
        double value = PenaltyObjective(problem, candidate, lambda, nullptr);
        if (value > current - 1e-14) {
          // Accept (allow flat moves to traverse plateaus).
          improved = value > current + 1e-12;
          p = std::move(candidate);
          current = value;
          step = std::min(step * 1.25, 10.0);
          break;
        }
        step *= 0.5;
        if (step < 1e-12) break;
      }
      if (!improved && step < 1e-10) break;
    }
    lambda *= options.penalty_growth;
  }

  double max_violation = 0.0;
  PenaltyObjective(problem, p, 0.0, &max_violation);
  solution.p = std::move(p);
  solution.entropy = Entropy(solution.p);
  solution.max_violation = max_violation;
  solution.iterations = iterations;
  solution.feasible = max_violation <= options.feasibility_tolerance;
  return solution;
}

}  // namespace rwl::maxent
