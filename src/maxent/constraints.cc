#include "src/maxent/constraints.h"

#include <algorithm>
#include <optional>
#include <utility>

#include "src/logic/printer.h"
#include "src/logic/transform.h"

namespace rwl::maxent {
namespace {

using logic::AtomSet;
using logic::ClassUniverse;
using logic::CompareOp;
using logic::Expr;
using logic::ExprPtr;
using logic::Formula;
using logic::FormulaPtr;

// coef over atoms for Σ_{a∈s} p_a.
std::vector<double> Indicator(const AtomSet& s, int dim) {
  std::vector<double> coef(dim, 0.0);
  for (int a : s.Atoms()) coef[a] = 1.0;
  return coef;
}

std::vector<double> Minus(std::vector<double> v) {
  for (double& x : v) x = -x;
  return v;
}

// a·p + c·(b·p) as coefficient vector.
std::vector<double> AffineCombine(const std::vector<double>& a, double c,
                                  const std::vector<double>& b) {
  std::vector<double> out(a.size());
  for (size_t i = 0; i < a.size(); ++i) out[i] = a[i] + c * b[i];
  return out;
}

struct PropClass {
  AtomSet body;  // B ∩ C
  AtomSet cond;  // C (all atoms when unconditional)
  bool conditional = false;
};

std::optional<PropClass> CompileProportion(const ClassUniverse& universe,
                                           const ExprPtr& e) {
  if (e->kind() != Expr::Kind::kProportion &&
      e->kind() != Expr::Kind::kConditional) {
    return std::nullopt;
  }
  if (e->vars().size() != 1) return std::nullopt;
  logic::TermPtr subject = logic::Term::Variable(e->vars()[0]);
  auto body = CompileClass(universe, e->body(), subject);
  if (!body) return std::nullopt;
  PropClass out{*body, AtomSet::All(universe), false};
  if (e->kind() == Expr::Kind::kConditional) {
    auto cond = CompileClass(universe, e->cond(), subject);
    if (!cond) return std::nullopt;
    out.cond = *cond;
    out.conditional = true;
  }
  out.body = out.body.Intersect(out.cond);
  return out;
}

// Adds the linear constraints for `prop op v` (possibly flipped so the
// proportion ends up on the left) with tolerance τ.
void AddComparison(const PropClass& prop, CompareOp op, bool flipped, double v,
                   double tau, int dim, Problem* problem) {
  std::vector<double> body = Indicator(prop.body, dim);
  std::vector<double> cond = Indicator(prop.cond, dim);
  // S_B ≤ (v+τ)·S_C   ⇔  S_B - (v+τ)·S_C ≤ 0
  auto upper = [&](double value) {
    LinearConstraint c;
    if (prop.conditional) {
      c.coef = AffineCombine(body, -value, cond);
      c.bound = 0.0;
    } else {
      c.coef = body;
      c.bound = value;
    }
    problem->constraints.push_back(std::move(c));
  };
  // S_B ≥ (v-τ)·S_C   ⇔  (v-τ)·S_C - S_B ≤ 0
  auto lower = [&](double value) {
    LinearConstraint c;
    if (prop.conditional) {
      c.coef = AffineCombine(Minus(body), value, cond);
      c.bound = 0.0;
    } else {
      c.coef = Minus(body);
      c.bound = -value;
    }
    problem->constraints.push_back(std::move(c));
  };

  // Normalize flipped comparisons: v op prop.
  if (flipped) {
    if (op == CompareOp::kApproxLeq || op == CompareOp::kLeq) {
      op = op == CompareOp::kApproxLeq ? CompareOp::kApproxGeq : CompareOp::kGeq;
    } else if (op == CompareOp::kApproxGeq || op == CompareOp::kGeq) {
      op = op == CompareOp::kApproxGeq ? CompareOp::kApproxLeq : CompareOp::kLeq;
    }
    // ≈ / = are symmetric.
  }

  switch (op) {
    case CompareOp::kApproxEq:
      upper(v + tau);
      lower(v - tau);
      break;
    case CompareOp::kEq:
      upper(v);
      lower(v);
      break;
    case CompareOp::kApproxLeq:
      upper(v + tau);
      break;
    case CompareOp::kLeq:
      upper(v);
      break;
    case CompareOp::kApproxGeq:
      lower(v - tau);
      break;
    case CompareOp::kGeq:
      lower(v);
      break;
  }
}

}  // namespace

double MassOf(const logic::AtomSet& s, const std::vector<double>& p) {
  double mass = 0.0;
  for (int a : s.Atoms()) mass += p[a];
  return mass;
}

ExtractedKb ExtractUnaryKb(const logic::Vocabulary& vocabulary,
                           const logic::FormulaPtr& kb,
                           const semantics::ToleranceVector& tolerances) {
  ExtractedKb out;
  if (!vocabulary.IsUnaryRelational()) {
    out.error = "vocabulary is not unary-relational";
    return out;
  }
  for (const auto& p : vocabulary.predicates()) {
    out.predicates.push_back(p.name);
  }
  ClassUniverse universe(out.predicates);
  const int dim = universe.num_atoms();
  out.problem.dim = dim;
  out.problem.support.assign(dim, true);

  logic::Taxonomy taxonomy(universe);

  for (const auto& conjunct : logic::Conjuncts(kb)) {
    // 1. Universal class constraints.
    if (taxonomy.Absorb(conjunct)) continue;

    // 2. Facts about a constant: class expression applied to one constant.
    std::set<std::string> constants = logic::ConstantsOf(conjunct);
    if (constants.size() == 1) {
      logic::TermPtr subject = logic::Term::Constant(*constants.begin());
      auto cls = CompileClass(universe, conjunct, subject);
      if (cls.has_value()) {
        auto [it, inserted] =
            out.constant_facts.emplace(*constants.begin(), *cls);
        if (!inserted) it->second = it->second.Intersect(*cls);
        continue;
      }
    }

    // 3. Proportion comparisons against constants.
    if (conjunct->kind() == Formula::Kind::kCompare && constants.empty()) {
      ExprPtr prop_side = conjunct->expr_left();
      ExprPtr const_side = conjunct->expr_right();
      bool flipped = false;
      if (prop_side->kind() == Expr::Kind::kConstant) {
        std::swap(prop_side, const_side);
        flipped = true;
      }
      if (const_side->kind() == Expr::Kind::kConstant) {
        auto prop = CompileProportion(universe, prop_side);
        if (prop.has_value()) {
          double tau = logic::IsApproximate(conjunct->compare_op())
                           ? tolerances.Get(conjunct->tolerance_index())
                           : 0.0;
          AddComparison(*prop, conjunct->compare_op(), flipped,
                        const_side->value(), tau, dim, &out.problem);
          continue;
        }
      }
    }

    // 4. Negated "class is approximately empty/full": ¬(||ψ||_x ≈ v) with
    //    v near 0 or 1 (used by Theorem 5.23 KBs).
    if (conjunct->kind() == Formula::Kind::kNot &&
        conjunct->body()->kind() == Formula::Kind::kCompare &&
        constants.empty()) {
      const FormulaPtr& inner = conjunct->body();
      ExprPtr prop_side = inner->expr_left();
      ExprPtr const_side = inner->expr_right();
      if (prop_side->kind() == Expr::Kind::kConstant) {
        std::swap(prop_side, const_side);
      }
      if (const_side->kind() == Expr::Kind::kConstant &&
          inner->compare_op() == CompareOp::kApproxEq) {
        auto prop = CompileProportion(universe, prop_side);
        double v = const_side->value();
        double tau = tolerances.Get(inner->tolerance_index());
        if (prop.has_value() && !prop->conditional) {
          if (v - tau <= 0.0) {
            // ¬(S ≈ v) with v ≈ 0  ⇒  S ≥ v + τ.
            AddComparison(*prop, CompareOp::kGeq, false, v + tau, 0.0, dim,
                          &out.problem);
            continue;
          }
          if (v + tau >= 1.0) {
            AddComparison(*prop, CompareOp::kLeq, false, v - tau, 0.0, dim,
                          &out.problem);
            continue;
          }
        }
      }
    }

    out.error = "unsupported conjunct: " + logic::ToString(conjunct);
    return out;
  }

  for (int a = 0; a < dim; ++a) {
    if (!taxonomy.allowed().Get(a)) out.problem.support[a] = false;
  }
  out.ok = true;
  return out;
}

}  // namespace rwl::maxent
