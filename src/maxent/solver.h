// Maximum-entropy solver over the probability simplex with linear
// inequality constraints.
//
// Solves  max H(p) = -Σ p_i ln p_i  subject to  p ∈ Δ,  A p ≤ b,  and
// p_i = 0 outside a support set.  This is the computational core of the
// Section 6 machinery: the space S(KB) of atom-proportion vectors allowed
// by a unary KB is exactly such a polytope, and the random-worlds degrees
// of belief concentrate at its maximum-entropy point as N → ∞.
//
// Algorithm: entropic mirror descent (multiplicative updates, which keep
// the iterate in the relative interior of the simplex automatically) on the
// penalized objective H(p) - λ Σ_j max(0, a_j·p - b_j)², with the penalty
// weight λ escalated geometrically and warm starts between stages.  The
// exterior penalty needs no strictly feasible interior point, so equality
// constraints (paired inequalities with τ = 0) are handled too.
#ifndef RWL_MAXENT_SOLVER_H_
#define RWL_MAXENT_SOLVER_H_

#include <string>
#include <vector>

namespace rwl::maxent {

// One inequality: coef · p ≤ bound.
struct LinearConstraint {
  std::vector<double> coef;
  double bound = 0.0;
};

struct Problem {
  int dim = 0;
  // p_i forced to 0 where false; empty means all-true.
  std::vector<bool> support;
  std::vector<LinearConstraint> constraints;
};

struct SolverOptions {
  int penalty_stages = 9;
  double initial_penalty = 10.0;
  double penalty_growth = 10.0;
  int inner_iterations = 400;
  double initial_step = 0.5;
  // Residual constraint violation above this marks the problem infeasible.
  double feasibility_tolerance = 1e-4;
};

struct Solution {
  bool feasible = false;
  std::vector<double> p;
  double entropy = 0.0;
  double max_violation = 0.0;
  int iterations = 0;
};

// Entropy of a distribution (0 ln 0 = 0).
double Entropy(const std::vector<double>& p);

Solution Solve(const Problem& problem, const SolverOptions& options = {});

}  // namespace rwl::maxent

#endif  // RWL_MAXENT_SOLVER_H_
