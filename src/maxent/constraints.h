// Extraction of the constraint space S(KB) (Section 6) from a unary KB.
//
// For a vocabulary of k unary predicates, every world induces a vector of
// atom proportions ⃗p ∈ Δ(2^k).  A unary KB constrains ⃗p linearly:
//
//   ∀x φ(x)                    →  p_a = 0 for atoms a ∉ φ
//   ||B(x) | C(x)||_x ≈_i v    →  |S_{B∩C} - v·S_C| ≤ τ_i · S_C
//   ||B(x)||_x ⪯_i v           →  S_B ≤ v + τ_i            (etc.)
//
// where S_E = Σ_{a∈E} p_a.  Conjuncts about constants are collected
// separately (they do not move the maximum-entropy point as N → ∞; they are
// used for conditioning at query time).  Any conjunct outside this fragment
// makes the extraction report failure, in which case the maximum-entropy
// engine declines the KB.
#ifndef RWL_MAXENT_CONSTRAINTS_H_
#define RWL_MAXENT_CONSTRAINTS_H_

#include <map>
#include <string>
#include <vector>

#include "src/logic/classalg.h"
#include "src/logic/formula.h"
#include "src/logic/vocabulary.h"
#include "src/maxent/solver.h"
#include "src/semantics/tolerance.h"

namespace rwl::maxent {

struct ExtractedKb {
  bool ok = false;
  std::string error;

  // Atom universe: predicates in vocabulary id order; atom bit j ==
  // predicate j holds.
  std::vector<std::string> predicates;

  Problem problem;

  // Per-constant conjunction of class facts (atom sets); a constant with no
  // facts is simply absent.
  std::map<std::string, logic::AtomSet> constant_facts;
};

ExtractedKb ExtractUnaryKb(const logic::Vocabulary& vocabulary,
                           const logic::FormulaPtr& kb,
                           const semantics::ToleranceVector& tolerances);

// Σ_{a ∈ s} p_a.
double MassOf(const logic::AtomSet& s, const std::vector<double>& p);

}  // namespace rwl::maxent

#endif  // RWL_MAXENT_CONSTRAINTS_H_
