#include "src/evidence/dempster.h"

namespace rwl::evidence {

double DempsterCombine(const std::vector<double>& alphas) {
  double product = 1.0;
  double co_product = 1.0;
  for (double a : alphas) {
    product *= a;
    co_product *= (1.0 - a);
  }
  return product / (product + co_product);
}

}  // namespace rwl::evidence
