// Dempster's rule of combination (Shafer 1976), as derived independently by
// random worlds for essentially-disjoint competing reference classes
// (Theorem 5.26):
//
//   δ(α_1..α_m) = Π α_i / (Π α_i + Π (1-α_i)).
#ifndef RWL_EVIDENCE_DEMPSTER_H_
#define RWL_EVIDENCE_DEMPSTER_H_

#include <vector>

namespace rwl::evidence {

// Combines independent pieces of evidence α_i ∈ [0,1] in favor of a single
// proposition.  Precondition (Theorem 5.26): not both some α_i == 1 and some
// α_j == 0 — δ is undefined there; callers must handle that case (the paper:
// the random-worlds limit does not exist unless the defaults have equal
// strength).
double DempsterCombine(const std::vector<double>& alphas);

}  // namespace rwl::evidence

#endif  // RWL_EVIDENCE_DEMPSTER_H_
