#include "src/evidence/combination.h"

#include <algorithm>
#include <utility>

#include "src/engines/symbolic_engine.h"
#include "src/logic/printer.h"

namespace rwl::evidence {

namespace {

using logic::Expr;
using logic::Formula;
using logic::FormulaPtr;

// Matches a unary atom P(t); returns the predicate name or "".
std::string UnaryAtom(const FormulaPtr& f, bool want_constant,
                      std::string* term_name) {
  if (f->kind() != Formula::Kind::kAtom || f->terms().size() != 1) return "";
  const logic::TermPtr& t = f->terms()[0];
  if (t->is_constant() != want_constant) return "";
  *term_name = t->name();
  return f->predicate();
}

}  // namespace

EvidenceInstance AnalyzeEvidenceInstance(
    const std::vector<logic::FormulaPtr>& conjuncts,
    const logic::FormulaPtr& query) {
  EvidenceInstance out;

  std::vector<std::string> facts;  // predicates asserted of the constant
  std::vector<std::pair<std::string, std::string>> disjoint_pairs;

  for (const FormulaPtr& conjunct : conjuncts) {
    if (conjunct->kind() == Formula::Kind::kCompare) {
      // ||T(x) | R(x)||_x ≈ α, either orientation.
      if (conjunct->compare_op() != logic::CompareOp::kApproxEq) {
        out.reason = "non-≈ statistical conjunct";
        return out;
      }
      logic::ExprPtr stat = conjunct->expr_left();
      logic::ExprPtr constant = conjunct->expr_right();
      if (stat->kind() == Expr::Kind::kConstant) std::swap(stat, constant);
      if (constant->kind() != Expr::Kind::kConstant ||
          stat->kind() != Expr::Kind::kConditional ||
          stat->vars().size() != 1) {
        out.reason = "statistical conjunct is not a single-variable "
                     "conditional against a constant";
        return out;
      }
      const double alpha = constant->value();
      if (alpha < 0.0 || alpha > 1.0) {
        out.reason = "statistic outside [0, 1]";
        return out;
      }
      const std::string& var = stat->vars()[0];
      std::string body_term;
      std::string cond_term;
      std::string target = UnaryAtom(stat->body(), /*want_constant=*/false,
                                     &body_term);
      std::string source = UnaryAtom(stat->cond(), /*want_constant=*/false,
                                     &cond_term);
      if (target.empty() || source.empty() || body_term != var ||
          cond_term != var) {
        out.reason = "conditional is not atom-over-atom in the proportion "
                     "variable";
        return out;
      }
      if (out.target.empty()) {
        out.target = target;
      } else if (target != out.target) {
        out.reason = "statistics report more than one target predicate";
        return out;
      }
      if (std::find(out.sources.begin(), out.sources.end(), source) !=
          out.sources.end()) {
        out.reason = "duplicate reference class " + source;
        return out;
      }
      out.sources.push_back(source);
      out.alphas.push_back(alpha);
      out.tolerance_indices.push_back(conjunct->tolerance_index());
      continue;
    }

    if (conjunct->kind() == Formula::Kind::kAtom) {
      std::string term_name;
      std::string predicate = UnaryAtom(conjunct, /*want_constant=*/true,
                                        &term_name);
      if (predicate.empty()) {
        out.reason = "non-unary ground fact";
        return out;
      }
      if (out.constant.empty()) {
        out.constant = term_name;
      } else if (term_name != out.constant) {
        out.reason = "facts about more than one constant";
        return out;
      }
      facts.push_back(predicate);
      continue;
    }

    // The only other admissible conjunct: ∃!x (R_i(x) ∧ R_j(x)).
    auto parts = engines::MatchExistsUnique(conjunct);
    if (parts.has_value() &&
        parts->body->kind() == Formula::Kind::kAnd) {
      std::string lhs_term;
      std::string rhs_term;
      std::string lhs = UnaryAtom(parts->body->left(),
                                  /*want_constant=*/false, &lhs_term);
      std::string rhs = UnaryAtom(parts->body->right(),
                                  /*want_constant=*/false, &rhs_term);
      if (!lhs.empty() && !rhs.empty() && lhs != rhs &&
          lhs_term == parts->var && rhs_term == parts->var) {
        disjoint_pairs.emplace_back(std::min(lhs, rhs), std::max(lhs, rhs));
        continue;
      }
    }
    out.reason = "conjunct outside the Theorem 5.26 shape: " +
                 logic::ToString(conjunct);
    return out;
  }

  if (out.sources.size() < 2) {
    out.reason = "fewer than two reference-class statistics";
    return out;
  }
  if (std::find(out.sources.begin(), out.sources.end(), out.target) !=
      out.sources.end()) {
    out.reason = "target predicate is also a reference class";
    return out;
  }

  // Exactly one membership fact per reference class, and none besides.
  std::vector<std::string> sorted_sources = out.sources;
  std::sort(sorted_sources.begin(), sorted_sources.end());
  std::sort(facts.begin(), facts.end());
  if (facts != sorted_sources) {
    out.reason = "membership facts do not match the reference classes "
                 "one-for-one";
    return out;
  }

  // Pairwise essential disjointness: every source pair asserted.
  for (size_t i = 0; i < out.sources.size(); ++i) {
    for (size_t j = i + 1; j < out.sources.size(); ++j) {
      std::pair<std::string, std::string> need{
          std::min(out.sources[i], out.sources[j]),
          std::max(out.sources[i], out.sources[j])};
      if (std::find(disjoint_pairs.begin(), disjoint_pairs.end(), need) ==
          disjoint_pairs.end()) {
        out.reason = "missing essential-disjointness conjunct for " +
                     need.first + "/" + need.second;
        return out;
      }
    }
  }
  for (const auto& pair : disjoint_pairs) {
    bool lhs_known = std::find(out.sources.begin(), out.sources.end(),
                               pair.first) != out.sources.end();
    bool rhs_known = std::find(out.sources.begin(), out.sources.end(),
                               pair.second) != out.sources.end();
    if (!lhs_known || !rhs_known) {
      out.reason = "disjointness conjunct over a non-reference class";
      return out;
    }
  }

  // Query: exactly T(c).
  std::string query_term;
  if (UnaryAtom(query, /*want_constant=*/true, &query_term) != out.target ||
      query_term != out.constant) {
    out.reason = "query is not the target predicate of the individual";
    return out;
  }

  out.ok = true;
  return out;
}

}  // namespace rwl::evidence
