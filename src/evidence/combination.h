// Recognizes Theorem 5.26 evidence-combination instances: m ≥ 2
// essentially-disjoint reference classes each reporting a point statistic
// for the same target predicate about one individual,
//
//   KB = { ||T(x) | R_i(x)||_x ≈_{j_i} α_i,   R_i(c)   : i = 1..m }
//        ∪ { ∃!x (R_i(x) ∧ R_j(x))            : i < j },
//   query = T(c),
//
// with the R_i pairwise-distinct unary predicates, T ∉ {R_i}, and nothing
// else in the KB.  For that exact shape the random-worlds limit is
// Dempster's rule of combination over the α_i (dempster.h); the pairwise
// ∃! conjuncts are load-bearing — without essential disjointness the
// maximum-entropy point puts real mass on the overlaps and the limit is
// *not* the Dempster value.
//
// The analyzer is the Capability gate of the `evidence` planner strategy
// (core/inference.cc); the same shape is matched independently by the
// symbolic engine's TryDempster, which the differential `evidence` check
// exploits as a cross-implementation oracle.
#ifndef RWL_EVIDENCE_COMBINATION_H_
#define RWL_EVIDENCE_COMBINATION_H_

#include <string>
#include <vector>

#include "src/logic/formula.h"

namespace rwl::evidence {

struct EvidenceInstance {
  bool ok = false;
  // Why the (KB, query) pair is outside the shape; empty when ok.
  std::string reason;
  std::vector<double> alphas;
  std::vector<int> tolerance_indices;  // aligned with alphas
  std::vector<std::string> sources;    // the R_i, aligned with alphas
  std::string target;                  // T
  std::string constant;                // c
};

EvidenceInstance AnalyzeEvidenceInstance(
    const std::vector<logic::FormulaPtr>& conjuncts,
    const logic::FormulaPtr& query);

}  // namespace rwl::evidence

#endif  // RWL_EVIDENCE_COMBINATION_H_
