#include "src/combinatorics/logmath.h"

#include <cmath>
#include <mutex>

namespace rwl {
namespace {

// Cache of log(n!) for n < kCacheSize, built on first use.
constexpr int kCacheSize = 1 << 16;

const std::vector<double>& FactorialCache() {
  static const std::vector<double>* cache = [] {
    auto* v = new std::vector<double>(kCacheSize);
    (*v)[0] = 0.0;
    for (int i = 1; i < kCacheSize; ++i) {
      (*v)[i] = (*v)[i - 1] + std::log(static_cast<double>(i));
    }
    return v;
  }();
  return *cache;
}

}  // namespace

double LogFactorial(int64_t n) {
  if (n < 0) return kNegInf;
  if (n < kCacheSize) return FactorialCache()[n];
  return std::lgamma(static_cast<double>(n) + 1.0);
}

double LogBinomial(int64_t n, int64_t k) {
  if (k < 0 || k > n || n < 0) return kNegInf;
  return LogFactorial(n) - LogFactorial(k) - LogFactorial(n - k);
}

double LogMultinomial(int64_t n, const std::vector<int64_t>& parts) {
  double result = LogFactorial(n);
  for (int64_t p : parts) {
    if (p < 0) return kNegInf;
    result -= LogFactorial(p);
  }
  return result;
}

double LogFallingFactorial(int64_t n, int64_t k) {
  if (k < 0 || n < k) return kNegInf;
  return LogFactorial(n) - LogFactorial(n - k);
}

void LogSumExp::Add(double log_x) {
  if (log_x == kNegInf) return;
  if (max_ == kNegInf) {
    max_ = log_x;
    sum_ = 1.0;
    return;
  }
  if (log_x <= max_) {
    sum_ += std::exp(log_x - max_);
  } else {
    sum_ = sum_ * std::exp(max_ - log_x) + 1.0;
    max_ = log_x;
  }
}

double LogSumExp::Value() const {
  if (max_ == kNegInf) return kNegInf;
  return max_ + std::log(sum_);
}

double LogAdd(double a, double b) {
  LogSumExp acc;
  acc.Add(a);
  acc.Add(b);
  return acc.Value();
}

}  // namespace rwl
