// Log-space combinatorics kernel.
//
// All world-counting in rwl happens in log-space: the number of worlds over a
// domain of size N grows like 2^(kN), so raw counts overflow immediately.
// This header provides cached log-factorials, log-binomials, log-multinomials
// and a numerically stable log-sum-exp accumulator.
#ifndef RWL_COMBINATORICS_LOGMATH_H_
#define RWL_COMBINATORICS_LOGMATH_H_

#include <cstdint>
#include <limits>
#include <vector>

namespace rwl {

// Natural log of n!, exact via lgamma.  Cached for small n.
double LogFactorial(int64_t n);

// Natural log of C(n, k).  Returns -inf when the coefficient is zero
// (k < 0 or k > n).
double LogBinomial(int64_t n, int64_t k);

// Natural log of the multinomial coefficient N! / (n_1! ... n_m!).
// Requires sum(parts) == n; returns -inf if any part is negative.
double LogMultinomial(int64_t n, const std::vector<int64_t>& parts);

// Natural log of the falling factorial n * (n-1) * ... * (n-k+1).
// Returns 0 for k == 0 and -inf when n < k.
double LogFallingFactorial(int64_t n, int64_t k);

inline constexpr double kNegInf = -std::numeric_limits<double>::infinity();

// Streaming log-sum-exp: accumulates log(sum_i exp(x_i)) without overflow.
class LogSumExp {
 public:
  LogSumExp() = default;

  // Adds a term with log-value `log_x` (use kNegInf for a zero term).
  void Add(double log_x);

  // log of the accumulated sum; kNegInf if empty or all terms were zero.
  double Value() const;

  bool IsZero() const { return max_ == kNegInf; }

 private:
  double max_ = kNegInf;
  double sum_ = 0.0;  // sum of exp(x_i - max_)
};

// log(exp(a) + exp(b)), stable.
double LogAdd(double a, double b);

}  // namespace rwl

#endif  // RWL_COMBINATORICS_LOGMATH_H_
