// Reference-class baselines (Section 2): Reichenbach's most-specific-class
// rule and Kyburg's strength rule.
//
// These are the systems the paper argues random worlds subsumes.  They are
// implemented over the same KB analysis as the symbolic engine so the
// comparison benches can show, KB by KB, where the baselines go vacuous
// ([0,1]) while random worlds still answers (e.g. incomparable competing
// classes, Section 5.3).
#ifndef RWL_REFCLASS_REFERENCE_CLASS_H_
#define RWL_REFCLASS_REFERENCE_CLASS_H_

#include <string>
#include <vector>

#include "src/logic/formula.h"

namespace rwl::refclass {

enum class Policy {
  kReichenbach,     // most specific applicable class; conflict → vacuous
  kKyburgStrength,  // + prefer tighter intervals from comparable superclasses
};

struct RefClassAnswer {
  enum class Status {
    kInterval,  // the baseline committed to [lo, hi]
    kVacuous,   // conflicting classes: the baseline returns [0, 1]
    kNoClass,   // no applicable reference class found
  };
  Status status = Status::kNoClass;
  double lo = 0.0;
  double hi = 1.0;
  std::string chosen_class;
  std::string diagnosis;
};

// Computes the baseline's answer for query φ(c) against the KB.
RefClassAnswer Infer(const logic::FormulaPtr& kb,
                     const logic::FormulaPtr& query, Policy policy);

}  // namespace rwl::refclass

#endif  // RWL_REFCLASS_REFERENCE_CLASS_H_
