#include "src/refclass/reference_class.h"

#include <map>
#include <optional>
#include <set>

#include "src/engines/symbolic_engine.h"
#include "src/logic/classalg.h"
#include "src/logic/printer.h"
#include "src/logic/transform.h"

namespace rwl::refclass {
namespace {

using engines::KbAnalysis;
using engines::StatStatement;
using logic::AtomSet;
using logic::ClassUniverse;
using logic::Formula;
using logic::FormulaPtr;
using logic::Term;
using logic::TermPtr;

struct Applicable {
  const StatStatement* stat = nullptr;
  AtomSet atoms;
};

void CollectArities(const FormulaPtr& f, std::map<std::string, int>* out);

void CollectAritiesExpr(const logic::ExprPtr& e,
                        std::map<std::string, int>* out) {
  if (e == nullptr) return;
  CollectArities(e->body(), out);
  CollectArities(e->cond(), out);
  CollectAritiesExpr(e->lhs(), out);
  CollectAritiesExpr(e->rhs(), out);
}

void CollectArities(const FormulaPtr& f, std::map<std::string, int>* out) {
  if (f == nullptr) return;
  if (f->kind() == Formula::Kind::kAtom) {
    (*out)[f->predicate()] = static_cast<int>(f->terms().size());
  }
  CollectArities(f->left(), out);
  CollectArities(f->right(), out);
  CollectAritiesExpr(f->expr_left(), out);
  CollectAritiesExpr(f->expr_right(), out);
}

}  // namespace

RefClassAnswer Infer(const FormulaPtr& kb, const FormulaPtr& query,
                     Policy policy) {
  RefClassAnswer answer;
  KbAnalysis analysis = engines::AnalyzeKb(kb);

  // The query must have the shape φ(c) for the reference-class reading:
  // find stats whose instantiated target equals the query.
  std::map<std::string, int> arities;
  for (const auto& conjunct : analysis.conjuncts) {
    CollectArities(conjunct, &arities);
  }
  CollectArities(query, &arities);
  std::vector<std::string> unary;
  for (const auto& [name, arity] : arities) {
    if (arity == 1) unary.push_back(name);
  }
  if (unary.empty() || unary.size() > ClassUniverse::kMaxPredicates) {
    answer.diagnosis = "no unary predicates to form classes over";
    return answer;
  }
  ClassUniverse universe(unary);
  logic::Taxonomy taxonomy(universe);
  for (const auto& conjunct : analysis.conjuncts) taxonomy.Absorb(conjunct);

  // Candidate classes with their intervals.
  std::optional<std::string> constant;
  std::vector<Applicable> applicable;
  for (const auto& stat : analysis.stats) {
    if (stat.vars.size() != 1) continue;
    // Try every constant mentioned in the query.
    for (const auto& c : logic::ConstantsOf(query)) {
      FormulaPtr target_c = logic::SubstituteVariable(
          stat.target, stat.vars[0], Term::Constant(c));
      if (!Formula::StructuralEqual(target_c, query)) continue;
      if (constant.has_value() && *constant != c) continue;
      auto atoms = CompileClass(universe, stat.refclass,
                                Term::Variable(stat.vars[0]));
      if (!atoms.has_value()) continue;
      // Membership: the facts about c must entail the class.
      AtomSet facts = AtomSet::All(universe);
      TermPtr subject = Term::Constant(c);
      for (size_t i = 0; i < analysis.conjuncts.size(); ++i) {
        if (analysis.is_stat_conjunct[i]) continue;
        std::set<std::string> cs = logic::ConstantsOf(analysis.conjuncts[i]);
        if (cs.size() != 1 || *cs.begin() != c) continue;
        auto cls = CompileClass(universe, analysis.conjuncts[i], subject);
        if (cls.has_value()) facts = facts.Intersect(*cls);
      }
      if (!taxonomy.Entails_Subset(facts, *atoms)) continue;
      constant = c;
      applicable.push_back(Applicable{&stat, *atoms});
    }
  }

  if (applicable.empty()) {
    answer.diagnosis = "no applicable reference class";
    return answer;
  }

  // Most specific classes (minimal under ⊆ among applicable).
  std::vector<const Applicable*> minimal;
  for (const auto& a : applicable) {
    bool is_minimal = true;
    for (const auto& b : applicable) {
      if (&a == &b) continue;
      bool b_strict_subset =
          taxonomy.Entails_Subset(b.atoms, a.atoms) &&
          !taxonomy.Entails_Subset(a.atoms, b.atoms);
      if (b_strict_subset) {
        is_minimal = false;
        break;
      }
    }
    if (is_minimal) minimal.push_back(&a);
  }

  // Distinct minimal classes (not mutually equal)?
  bool conflict = false;
  for (size_t i = 0; i + 1 < minimal.size() && !conflict; ++i) {
    for (size_t j = i + 1; j < minimal.size(); ++j) {
      bool equal = taxonomy.Entails_Subset(minimal[i]->atoms,
                                           minimal[j]->atoms) &&
                   taxonomy.Entails_Subset(minimal[j]->atoms,
                                           minimal[i]->atoms);
      if (!equal) {
        conflict = true;
        break;
      }
    }
  }
  if (conflict) {
    answer.status = RefClassAnswer::Status::kVacuous;
    answer.lo = 0.0;
    answer.hi = 1.0;
    answer.diagnosis =
        "incomparable competing reference classes: the baseline gives the "
        "trivial interval [0, 1]";
    return answer;
  }

  const Applicable* chosen = minimal.front();
  double lo = chosen->stat->lo;
  double hi = chosen->stat->hi;
  std::string why = "most specific class";

  if (policy == Policy::kKyburgStrength) {
    // Strength rule: a comparable superclass with a strictly tighter,
    // nested interval overrides the most specific class.
    for (const auto& a : applicable) {
      if (&a == chosen) continue;
      bool superclass = taxonomy.Entails_Subset(chosen->atoms, a.atoms);
      if (!superclass) continue;
      if (a.stat->lo >= lo && a.stat->hi <= hi &&
          (a.stat->lo > lo || a.stat->hi < hi)) {
        lo = a.stat->lo;
        hi = a.stat->hi;
        why = "strength rule: tighter interval from superclass " +
              logic::ToString(a.stat->refclass);
      }
    }
  }

  answer.status = RefClassAnswer::Status::kInterval;
  answer.lo = lo;
  answer.hi = hi;
  answer.chosen_class = logic::ToString(chosen->stat->refclass);
  answer.diagnosis = why;
  return answer;
}

}  // namespace rwl::refclass
