// Worker pools for parallel sweeps and the long-lived service layer.
//
// ParallelFor: the limit-sweep evaluator (engines/engine.cc) computes
// Pr_N^τ at every point of an (N, τ-scale) grid; the points are
// independent, so they are farmed out to a transient pool and the serial
// convergence reduction runs over the precomputed grid afterwards.  The
// pool is deliberately minimal: spawn, drain an atomic work counter, join.
// Exceptions in a task are caught and rethrown on Run's caller thread.
//
// WorkerPool: a persistent pool for the query scheduler
// (service/scheduler.h) — tasks are submitted continuously over the
// process lifetime instead of batched, so the threads are spawned once
// and parked on a condition variable between tasks.
#ifndef RWL_UTIL_THREAD_POOL_H_
#define RWL_UTIL_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace rwl::util {

// Number of workers to use for `count` independent tasks when the caller
// requested `requested` threads (0 = one per hardware thread).
inline int EffectiveThreads(int requested, int count) {
  int threads = requested > 0
                    ? requested
                    : static_cast<int>(std::thread::hardware_concurrency());
  if (threads < 1) threads = 1;
  if (threads > count) threads = count;
  return threads;
}

// Runs fn(0) .. fn(count-1) on up to `num_threads` workers (0 = auto).
// Blocks until every task has finished.  With a single worker the tasks run
// inline on the calling thread, in index order.
inline void ParallelFor(int num_threads, int count,
                        const std::function<void(int)>& fn) {
  if (count <= 0) return;
  int threads = EffectiveThreads(num_threads, count);
  if (threads <= 1) {
    for (int i = 0; i < count; ++i) fn(i);
    return;
  }
  std::atomic<int> next{0};
  std::atomic<bool> failed{false};
  std::exception_ptr error;
  std::mutex error_mutex;
  auto worker = [&]() {
    while (!failed.load(std::memory_order_relaxed)) {
      int i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= count) return;
      try {
        fn(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mutex);
        if (!error) error = std::current_exception();
        failed.store(true, std::memory_order_relaxed);
        return;
      }
    }
  };
  std::vector<std::thread> pool;
  pool.reserve(threads - 1);
  for (int t = 1; t < threads; ++t) pool.emplace_back(worker);
  worker();
  for (auto& thread : pool) thread.join();
  if (error) std::rethrow_exception(error);
}

// A persistent FIFO worker pool.  Submit() never blocks; the destructor
// drains every queued task before joining (submitters that must observe
// completion wait on their own promise/future — see service/service.cc).
// Tasks must not throw: the service layer converts failures into error
// responses before they reach the pool.
class WorkerPool {
 public:
  explicit WorkerPool(int num_threads) {
    int threads = num_threads > 0
                      ? num_threads
                      : static_cast<int>(std::thread::hardware_concurrency());
    if (threads < 1) threads = 1;
    workers_.reserve(threads);
    for (int t = 0; t < threads; ++t) {
      workers_.emplace_back([this] { WorkerLoop(); });
    }
  }

  ~WorkerPool() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      shutdown_ = true;
    }
    wake_.notify_all();
    for (auto& worker : workers_) worker.join();
  }

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  void Submit(std::function<void()> task) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      tasks_.push_back(std::move(task));
    }
    wake_.notify_one();
  }

  int num_threads() const { return static_cast<int>(workers_.size()); }

 private:
  void WorkerLoop() {
    for (;;) {
      std::function<void()> task;
      {
        std::unique_lock<std::mutex> lock(mutex_);
        wake_.wait(lock, [this] { return shutdown_ || !tasks_.empty(); });
        if (tasks_.empty()) return;  // shutdown with a drained queue
        task = std::move(tasks_.front());
        tasks_.pop_front();
      }
      task();
    }
  }

  std::mutex mutex_;
  std::condition_variable wake_;
  std::deque<std::function<void()>> tasks_;
  bool shutdown_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace rwl::util

#endif  // RWL_UTIL_THREAD_POOL_H_
