// A small worker pool for embarrassingly-parallel sweeps.
//
// The limit-sweep evaluator (engines/engine.cc) computes Pr_N^τ at every
// point of an (N, τ-scale) grid; the points are independent, so they are
// farmed out to a pool and the serial convergence reduction runs over the
// precomputed grid afterwards.  The pool is deliberately minimal: spawn,
// drain an atomic work counter, join.  Exceptions in a task are caught and
// rethrown on Run's caller thread.
#ifndef RWL_UTIL_THREAD_POOL_H_
#define RWL_UTIL_THREAD_POOL_H_

#include <atomic>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace rwl::util {

// Number of workers to use for `count` independent tasks when the caller
// requested `requested` threads (0 = one per hardware thread).
inline int EffectiveThreads(int requested, int count) {
  int threads = requested > 0
                    ? requested
                    : static_cast<int>(std::thread::hardware_concurrency());
  if (threads < 1) threads = 1;
  if (threads > count) threads = count;
  return threads;
}

// Runs fn(0) .. fn(count-1) on up to `num_threads` workers (0 = auto).
// Blocks until every task has finished.  With a single worker the tasks run
// inline on the calling thread, in index order.
inline void ParallelFor(int num_threads, int count,
                        const std::function<void(int)>& fn) {
  if (count <= 0) return;
  int threads = EffectiveThreads(num_threads, count);
  if (threads <= 1) {
    for (int i = 0; i < count; ++i) fn(i);
    return;
  }
  std::atomic<int> next{0};
  std::atomic<bool> failed{false};
  std::exception_ptr error;
  std::mutex error_mutex;
  auto worker = [&]() {
    while (!failed.load(std::memory_order_relaxed)) {
      int i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= count) return;
      try {
        fn(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mutex);
        if (!error) error = std::current_exception();
        failed.store(true, std::memory_order_relaxed);
        return;
      }
    }
  };
  std::vector<std::thread> pool;
  pool.reserve(threads - 1);
  for (int t = 1; t < threads; ++t) pool.emplace_back(worker);
  worker();
  for (auto& thread : pool) thread.join();
  if (error) std::rethrow_exception(error);
}

}  // namespace rwl::util

#endif  // RWL_UTIL_THREAD_POOL_H_
