// PersistentVector: an immutable-structure vector with structural sharing.
//
// A 32-ary trie (the classic Clojure/Scala persistent vector) plus a small
// tail buffer.  Copying a PersistentVector copies one shared_ptr and at
// most 31 tail elements, and the copies share every filled trie node —
// push_back path-copies O(log32 n) nodes and never touches the shared
// ones.  This is what makes the service catalog's copy-on-write mutation
// path O(delta): `KnowledgeBase next = head->kb` no longer duplicates the
// whole conjunct list, only the tail, and the successor KB shares every
// untouched formula chunk with its predecessor.
//
// The API is the read-mostly subset the KB needs: push_back, operator[],
// size, iteration.  There is no erase — retraction rebuilds (see
// service::RetractConjuncts), which keeps the invariant that a vector's
// contents never change after they are observable through a copy.
#ifndef RWL_UTIL_PERSISTENT_VECTOR_H_
#define RWL_UTIL_PERSISTENT_VECTOR_H_

#include <cstddef>
#include <memory>
#include <utility>
#include <vector>

namespace rwl::util {

template <typename T>
class PersistentVector {
 public:
  PersistentVector() = default;

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  const T& operator[](size_t i) const {
    const size_t tail_start = size_ - tail_.size();
    if (i >= tail_start) return tail_[i - tail_start];
    const Node* node = root_.get();
    for (int level = shift_; level > 0; level -= kBits) {
      node = node->children[(i >> level) & kMask].get();
    }
    return node->items[i & kMask];
  }

  const T& back() const { return (*this)[size_ - 1]; }

  void push_back(T value) {
    tail_.push_back(std::move(value));
    ++size_;
    if (tail_.size() == kWidth) FlushTail();
  }

  // True when this vector begins with exactly the elements of `base`
  // (compared with operator==).  Shared trie nodes are recognized by
  // pointer, so on the copy-then-append path this costs O(n/32 + delta)
  // pointer compares instead of O(n) element compares.
  bool StartsWith(const PersistentVector& base) const {
    if (base.size_ > size_) return false;
    size_t i = 0;
    while (i < base.size_) {
      if ((i & kMask) == 0 && i + kWidth <= base.size_ - base.tail_.size() &&
          i + kWidth <= size_ - tail_.size() &&
          LeafAt(i) == base.LeafAt(i)) {
        i += kWidth;  // whole chunk shared
        continue;
      }
      if (!((*this)[i] == base[i])) return false;
      ++i;
    }
    return true;
  }

  class Iterator {
   public:
    using value_type = T;
    using reference = const T&;
    using pointer = const T*;
    using difference_type = std::ptrdiff_t;
    using iterator_category = std::forward_iterator_tag;

    Iterator(const PersistentVector* owner, size_t index)
        : owner_(owner), index_(index) {}
    reference operator*() const { return (*owner_)[index_]; }
    pointer operator->() const { return &(*owner_)[index_]; }
    Iterator& operator++() {
      ++index_;
      return *this;
    }
    Iterator operator++(int) {
      Iterator old = *this;
      ++index_;
      return old;
    }
    bool operator==(const Iterator& other) const {
      return index_ == other.index_;
    }
    bool operator!=(const Iterator& other) const {
      return index_ != other.index_;
    }

   private:
    const PersistentVector* owner_;
    size_t index_;
  };

  Iterator begin() const { return Iterator(this, 0); }
  Iterator end() const { return Iterator(this, size_); }

 private:
  static constexpr int kBits = 5;
  static constexpr size_t kWidth = size_t{1} << kBits;
  static constexpr size_t kMask = kWidth - 1;

  struct Node {
    std::vector<std::shared_ptr<const Node>> children;  // internal node
    std::vector<T> items;                               // leaf node
  };
  using NodePtr = std::shared_ptr<const Node>;

  // The leaf node covering index i, or null when i falls in the tail.
  // Used only for shared-chunk detection; callers pass chunk-aligned i.
  NodePtr LeafAt(size_t i) const {
    if (i >= size_ - tail_.size()) return nullptr;
    if (shift_ == 0) return root_;
    NodePtr node = root_;
    for (int level = shift_; level > 0; level -= kBits) {
      node = node->children[(i >> level) & kMask];
    }
    return node;
  }

  // A path of internal nodes from `level` down to the leaf.
  static NodePtr NewPath(int level, NodePtr leaf) {
    while (level > 0) {
      auto node = std::make_shared<Node>();
      node->children.push_back(std::move(leaf));
      leaf = std::move(node);
      level -= kBits;
    }
    return leaf;
  }

  // Path-copies the spine from `parent` down and hangs `leaf` at `index`
  // (the trie index of the leaf's first element).
  static NodePtr PushTailRec(int level, const Node* parent, NodePtr leaf,
                             size_t index) {
    auto node = std::make_shared<Node>();
    if (parent != nullptr) node->children = parent->children;
    const size_t sub = (index >> level) & kMask;
    if (node->children.size() <= sub) node->children.resize(sub + 1);
    if (level == kBits) {
      node->children[sub] = std::move(leaf);
    } else {
      const Node* child =
          sub < (parent ? parent->children.size() : 0) && parent != nullptr
              ? parent->children[sub].get()
              : nullptr;
      node->children[sub] =
          PushTailRec(level - kBits, child, std::move(leaf), index);
    }
    return node;
  }

  void FlushTail() {
    auto leaf = std::make_shared<Node>();
    leaf->items = std::move(tail_);
    tail_.clear();
    const size_t trie_count = size_ - kWidth;  // trie size before this flush
    if (root_ == nullptr) {
      root_ = std::move(leaf);
      shift_ = 0;
      return;
    }
    if (trie_count == (size_t{1} << (shift_ + kBits))) {
      // Root is full: grow a level.
      auto new_root = std::make_shared<Node>();
      new_root->children.push_back(root_);
      new_root->children.push_back(NewPath(shift_, std::move(leaf)));
      root_ = std::move(new_root);
      shift_ += kBits;
      return;
    }
    root_ = PushTailRec(shift_ == 0 ? kBits : shift_, root_.get(),
                        std::move(leaf), trie_count);
    if (shift_ == 0) shift_ = kBits;
  }

  NodePtr root_;
  std::vector<T> tail_;  // the last size_ mod 32 elements (< kWidth of them)
  size_t size_ = 0;
  int shift_ = 0;  // trie depth: root level (0 = root is a leaf)
};

}  // namespace rwl::util

#endif  // RWL_UTIL_PERSISTENT_VECTOR_H_
