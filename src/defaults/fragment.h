// Recognizes the propositional-defaults fragment of L≈ (Section 6): KBs
// whose statistical conjuncts are all *hard* defaults — ||ψ | φ||_x ≈_i 1
// (or ≈_i 0, read as a rule to the negated consequent) over unary
// predicates of one proportion variable, sharing a single tolerance
// subscript (the GMP90 embedding of gmp90.h shares one ε) — plus ground
// class facts about a single subject constant.  Such instances translate
// losslessly into propositional default rules (epsilon_semantics.h), where
// p-entailment and the GMP90 maximum-entropy system decide the random-
// worlds limit exactly:
//
//   R p-entails evidence → query        ⟹  Pr_∞(query(c) | KB) = 1
//   R p-entails evidence → ¬query       ⟹  Pr_∞(query(c) | KB) = 0
//   query ME-plausible given evidence   ⟺  Pr_∞(query(c) | KB) = 1
//                                           (Theorem 6.1)
//
// The analyzer is the shared Capability gate of the epsilon_semantics, klm
// and gmp90 planner strategies (core/inference.cc): a KB outside the
// fragment makes all three inapplicable, with the first offending conjunct
// in `reason`.
#ifndef RWL_DEFAULTS_FRAGMENT_H_
#define RWL_DEFAULTS_FRAGMENT_H_

#include <string>
#include <vector>

#include "src/defaults/epsilon_semantics.h"
#include "src/logic/formula.h"

namespace rwl::defaults {

// Tractability caps: the exhaustive deciders enumerate 2^num_vars worlds
// (and, for the subset-based KLM decider, 2^num_rules rule subsets).
struct FragmentLimits {
  int max_vars = 10;
  int max_rules = 16;
};

struct DefaultsInstance {
  bool ok = false;
  // Why the (KB, query) pair is outside the fragment; empty when ok.
  std::string reason;
  int num_vars = 0;
  // Unary predicate names; index i is propositional variable i.
  std::vector<std::string> names;
  std::vector<Rule> rules;
  // evidence → query-class, where the antecedent conjoins the KB's ground
  // facts about the subject constant (Prop::True() when there are none).
  Rule query;
  // The single subject constant all ground facts and the query share.
  std::string constant;
};

// Maps KB conjuncts + a ground class query onto the fragment.  `ok` is
// false (with a reason) when any conjunct or the query falls outside it,
// or when a cap of `limits` is exceeded.
DefaultsInstance AnalyzeDefaultsInstance(
    const std::vector<logic::FormulaPtr>& conjuncts,
    const logic::FormulaPtr& query, const FragmentLimits& limits = {});

}  // namespace rwl::defaults

#endif  // RWL_DEFAULTS_FRAGMENT_H_
