#include "src/defaults/gmp90.h"

#include <cmath>

#include "src/logic/builder.h"
#include "src/maxent/solver.h"

namespace rwl::defaults {

double Gmp90System::ConditionalAtEpsilon(const Rule& query,
                                         double epsilon) const {
  const int num_worlds = 1 << num_vars_;
  maxent::Problem problem;
  problem.dim = num_worlds;
  problem.support.assign(num_worlds, true);

  // µ(C_i|B_i) ≥ 1-ε  ⇔  (1-ε)µ(B_i) - µ(B_i ∧ C_i) ≤ 0
  //                   ⇔  Σ_w coef_w µ_w ≤ 0 with
  //                      coef_w = (1-ε) - [w ⊨ C_i]   for w ⊨ B_i.
  for (const auto& rule : rules_) {
    maxent::LinearConstraint c;
    c.coef.assign(num_worlds, 0.0);
    c.bound = 0.0;
    for (int w = 0; w < num_worlds; ++w) {
      if (!EvalProp(rule.antecedent, static_cast<uint32_t>(w))) continue;
      bool consequent = EvalProp(rule.consequent, static_cast<uint32_t>(w));
      c.coef[w] = (1.0 - epsilon) - (consequent ? 1.0 : 0.0);
    }
    problem.constraints.push_back(std::move(c));
  }

  maxent::Solution solution = maxent::Solve(problem);
  if (!solution.feasible) return -1.0;

  double mass_b = 0.0;
  double mass_bc = 0.0;
  for (int w = 0; w < num_worlds; ++w) {
    if (!EvalProp(query.antecedent, static_cast<uint32_t>(w))) continue;
    mass_b += solution.p[w];
    if (EvalProp(query.consequent, static_cast<uint32_t>(w))) {
      mass_bc += solution.p[w];
    }
  }
  if (mass_b <= 0.0) return -1.0;
  return mass_bc / mass_b;
}

MePlausibleResult Gmp90System::MePlausible(
    const Rule& query, const std::vector<double>& epsilons) const {
  MePlausibleResult result;
  for (double eps : epsilons) {
    double value = ConditionalAtEpsilon(query, eps);
    if (value < 0.0) {
      result.feasible = false;
      return result;
    }
    result.series.push_back(value);
  }
  // Plausible when the series climbs toward 1: the final value must be
  // within O(ε) of 1.  The conditional at ε is ≥ 1 - O(ε) precisely for
  // plausible consequences; we allow a constant factor for solver slack.
  double final_eps = epsilons.back();
  result.plausible = result.series.back() >= 1.0 - 12.0 * final_eps;
  return result;
}

std::vector<int> Gmp90System::RuleStrengths() const {
  const int num_worlds = 1 << num_vars_;
  const int num_rules = static_cast<int>(rules_.size());
  std::vector<int> z(num_rules, 1);
  // κ(w) under current strengths.
  auto kappa = [&](uint32_t w) {
    int total = 0;
    for (int j = 0; j < num_rules; ++j) {
      if (EvalProp(rules_[j].antecedent, w) &&
          !EvalProp(rules_[j].consequent, w)) {
        total += z[j];
      }
    }
    return total;
  };
  // Iterate to the least fixed point; strengths are bounded by num_rules ×
  // max-strength in consistent sets, so cap iterations to detect divergence.
  const int max_strength = num_rules * num_rules + num_rules + 2;
  for (int round = 0; round < max_strength; ++round) {
    bool changed = false;
    for (int i = 0; i < num_rules; ++i) {
      int best = -1;
      for (uint32_t w = 0; w < static_cast<uint32_t>(num_worlds); ++w) {
        if (!EvalProp(rules_[i].antecedent, w) ||
            !EvalProp(rules_[i].consequent, w)) {
          continue;
        }
        int cost = kappa(w);
        if (best < 0 || cost < best) best = cost;
      }
      if (best < 0) return {};  // rule unverifiable: inconsistent set
      int updated = 1 + best;
      if (updated != z[i]) {
        z[i] = updated;
        changed = true;
      }
      if (z[i] > max_strength) return {};  // diverging: ε-inconsistent
    }
    if (!changed) return z;
  }
  return {};
}

int Gmp90System::CompareByStrengths(const Rule& query) const {
  std::vector<int> z = RuleStrengths();
  if (z.empty()) return 0;
  const int num_worlds = 1 << num_vars_;
  auto kappa = [&](uint32_t w) {
    int total = 0;
    for (size_t j = 0; j < rules_.size(); ++j) {
      if (EvalProp(rules_[j].antecedent, w) &&
          !EvalProp(rules_[j].consequent, w)) {
        total += z[j];
      }
    }
    return total;
  };
  int best_with = -1;
  int best_against = -1;
  for (uint32_t w = 0; w < static_cast<uint32_t>(num_worlds); ++w) {
    if (!EvalProp(query.antecedent, w)) continue;
    int cost = kappa(w);
    if (EvalProp(query.consequent, w)) {
      if (best_with < 0 || cost < best_with) best_with = cost;
    } else {
      if (best_against < 0 || cost < best_against) best_against = cost;
    }
  }
  if (best_with < 0) return -1;     // antecedent forces ¬C
  if (best_against < 0) return +1;  // antecedent forces C
  if (best_with < best_against) return +1;
  if (best_with > best_against) return -1;
  return 0;
}

logic::FormulaPtr PropToUnary(const PropPtr& f,
                              const std::vector<std::string>& names,
                              const logic::TermPtr& subject) {
  using logic::Formula;
  switch (f->kind()) {
    case Prop::Kind::kTrue:
      return Formula::True();
    case Prop::Kind::kFalse:
      return Formula::False();
    case Prop::Kind::kVar:
      return Formula::Atom(names[f->var()], {subject});
    case Prop::Kind::kNot:
      return Formula::Not(PropToUnary(f->left(), names, subject));
    case Prop::Kind::kAnd:
      return Formula::And(PropToUnary(f->left(), names, subject),
                          PropToUnary(f->right(), names, subject));
    case Prop::Kind::kOr:
      return Formula::Or(PropToUnary(f->left(), names, subject),
                         PropToUnary(f->right(), names, subject));
  }
  return Formula::True();
}

logic::FormulaPtr TranslateRule(const Rule& rule,
                                const std::vector<std::string>& names) {
  logic::TermPtr x = logic::V("x");
  return logic::Default(PropToUnary(rule.antecedent, names, x),
                        PropToUnary(rule.consequent, names, x),
                        {"x"}, /*tolerance_index=*/1);
}

RwEmbedding TranslateQuery(const Gmp90System& system, const Rule& query,
                           const std::vector<std::string>& names,
                           const std::string& constant) {
  RwEmbedding out;
  for (const auto& rule : system.rules()) {
    out.kb.Add(TranslateRule(rule, names));
  }
  logic::TermPtr c = logic::C(constant);
  out.kb.Add(PropToUnary(query.antecedent, names, c));
  out.query = PropToUnary(query.consequent, names, c);
  return out;
}

}  // namespace rwl::defaults
