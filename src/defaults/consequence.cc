#include "src/defaults/consequence.h"

namespace rwl::defaults {

ConsequenceResult RwEntails(const KnowledgeBase& kb,
                            const logic::FormulaPtr& query,
                            const InferenceOptions& options, double slack) {
  ConsequenceResult result;
  result.answer = DegreeOfBelief(kb, query, options);
  switch (result.answer.status) {
    case Answer::Status::kPoint:
      result.decided = true;
      result.entails = result.answer.value >= 1.0 - slack;
      break;
    case Answer::Status::kInterval:
      result.decided = true;
      result.entails = result.answer.lo >= 1.0 - slack;
      break;
    default:
      break;
  }
  return result;
}

}  // namespace rwl::defaults
