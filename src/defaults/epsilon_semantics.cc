#include "src/defaults/epsilon_semantics.h"

namespace rwl::defaults {

PropPtr Prop::True() {
  static const PropPtr instance(new Prop(Kind::kTrue));
  return instance;
}

PropPtr Prop::False() {
  static const PropPtr instance(new Prop(Kind::kFalse));
  return instance;
}

PropPtr Prop::Var(int index) {
  auto* p = new Prop(Kind::kVar);
  p->var_ = index;
  return PropPtr(p);
}

PropPtr Prop::Not(PropPtr f) {
  auto* p = new Prop(Kind::kNot);
  p->left_ = std::move(f);
  return PropPtr(p);
}

PropPtr Prop::And(PropPtr lhs, PropPtr rhs) {
  auto* p = new Prop(Kind::kAnd);
  p->left_ = std::move(lhs);
  p->right_ = std::move(rhs);
  return PropPtr(p);
}

PropPtr Prop::Or(PropPtr lhs, PropPtr rhs) {
  auto* p = new Prop(Kind::kOr);
  p->left_ = std::move(lhs);
  p->right_ = std::move(rhs);
  return PropPtr(p);
}

bool EvalProp(const PropPtr& f, uint32_t world) {
  switch (f->kind()) {
    case Prop::Kind::kTrue:
      return true;
    case Prop::Kind::kFalse:
      return false;
    case Prop::Kind::kVar:
      return (world >> f->var()) & 1;
    case Prop::Kind::kNot:
      return !EvalProp(f->left(), world);
    case Prop::Kind::kAnd:
      return EvalProp(f->left(), world) && EvalProp(f->right(), world);
    case Prop::Kind::kOr:
      return EvalProp(f->left(), world) || EvalProp(f->right(), world);
  }
  return false;
}

bool Tolerated(const Rule& rule, const std::vector<Rule>& rules,
               int num_vars) {
  const uint32_t num_worlds = uint32_t{1} << num_vars;
  for (uint32_t w = 0; w < num_worlds; ++w) {
    if (!EvalProp(rule.antecedent, w) || !EvalProp(rule.consequent, w)) {
      continue;
    }
    bool all_materials = true;
    for (const auto& other : rules) {
      if (EvalProp(other.antecedent, w) && !EvalProp(other.consequent, w)) {
        all_materials = false;
        break;
      }
    }
    if (all_materials) return true;
  }
  return false;
}

bool EpsilonConsistent(const std::vector<Rule>& rules, int num_vars) {
  // Greedy peel-off: repeatedly remove some rule tolerated by the remainder.
  std::vector<Rule> remaining = rules;
  while (!remaining.empty()) {
    bool removed = false;
    for (size_t i = 0; i < remaining.size(); ++i) {
      if (Tolerated(remaining[i], remaining, num_vars)) {
        remaining.erase(remaining.begin() + static_cast<long>(i));
        removed = true;
        break;
      }
    }
    if (!removed) return false;
  }
  return true;
}

bool PEntails(const std::vector<Rule>& rules, const Rule& query,
              int num_vars) {
  std::vector<Rule> augmented = rules;
  augmented.push_back(Rule{query.antecedent, Prop::Not(query.consequent)});
  return !EpsilonConsistent(augmented, num_vars);
}

bool EpsilonConsistentBySubsets(const std::vector<Rule>& rules,
                                int num_vars) {
  const size_t n = rules.size();
  if (n == 0) return true;
  if (n >= 31) return EpsilonConsistent(rules, num_vars);

  // Per world w: the bitmask of rules materially satisfied at w; per rule
  // r: the masks of the worlds verifying r (w ⊨ B ∧ C).  Rule r is
  // tolerated by subset S iff some verifying world materially satisfies
  // all of S: S ⊆ materials(w).
  const uint32_t num_worlds = uint32_t{1} << num_vars;
  std::vector<std::vector<uint32_t>> verifier_materials(n);
  for (uint32_t w = 0; w < num_worlds; ++w) {
    uint32_t materials = 0;
    for (size_t r = 0; r < n; ++r) {
      if (!EvalProp(rules[r].antecedent, w) ||
          EvalProp(rules[r].consequent, w)) {
        materials |= uint32_t{1} << r;
      }
    }
    for (size_t r = 0; r < n; ++r) {
      if (EvalProp(rules[r].antecedent, w) &&
          EvalProp(rules[r].consequent, w)) {
        verifier_materials[r].push_back(materials);
      }
    }
  }

  for (uint32_t subset = 1; subset < (uint32_t{1} << n); ++subset) {
    bool tolerated = false;
    for (size_t r = 0; r < n && !tolerated; ++r) {
      if (((subset >> r) & 1) == 0) continue;
      for (uint32_t materials : verifier_materials[r]) {
        if ((subset & materials) == subset) {
          tolerated = true;
          break;
        }
      }
    }
    if (!tolerated) return false;
  }
  return true;
}

bool PEntailsBySubsets(const std::vector<Rule>& rules, const Rule& query,
                       int num_vars) {
  std::vector<Rule> augmented = rules;
  augmented.push_back(Rule{query.antecedent, Prop::Not(query.consequent)});
  return !EpsilonConsistentBySubsets(augmented, num_vars);
}

std::string PropToString(const PropPtr& f,
                         const std::vector<std::string>& names) {
  switch (f->kind()) {
    case Prop::Kind::kTrue:
      return "true";
    case Prop::Kind::kFalse:
      return "false";
    case Prop::Kind::kVar:
      return names[f->var()];
    case Prop::Kind::kNot:
      return "!" + PropToString(f->left(), names);
    case Prop::Kind::kAnd:
      return "(" + PropToString(f->left(), names) + " & " +
             PropToString(f->right(), names) + ")";
    case Prop::Kind::kOr:
      return "(" + PropToString(f->left(), names) + " | " +
             PropToString(f->right(), names) + ")";
  }
  return "?";
}

}  // namespace rwl::defaults
