// The random-worlds default-consequence relation |∼rw (Section 5.1):
//
//   KB |∼rw φ   iff   Pr_∞(φ | KB) = 1.
//
// Defaults "A's are typically B's" enter the KB through their statistical
// interpretation ||B|A||_x ≈_i 1 (Section 4.3; logic::Default builds it).
#ifndef RWL_DEFAULTS_CONSEQUENCE_H_
#define RWL_DEFAULTS_CONSEQUENCE_H_

#include "src/core/inference.h"
#include "src/core/knowledge_base.h"

namespace rwl::defaults {

struct ConsequenceResult {
  bool entails = false;      // Pr_∞(φ|KB) = 1 (within numeric tolerance)
  bool decided = false;      // an engine produced an answer at all
  Answer answer;             // the underlying degree of belief
};

// Numeric threshold: a swept/solved probability above 1 - slack counts as 1.
ConsequenceResult RwEntails(const KnowledgeBase& kb,
                            const logic::FormulaPtr& query,
                            const InferenceOptions& options = {},
                            double slack = 0.05);

}  // namespace rwl::defaults

#endif  // RWL_DEFAULTS_CONSEQUENCE_H_
