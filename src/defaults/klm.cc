#include "src/defaults/klm.h"

#include <cmath>
#include <sstream>

namespace rwl::defaults {
namespace {

using logic::Formula;
using logic::FormulaPtr;

struct Pr {
  bool defined = false;
  double value = 0.0;
};

Pr Probability(const KlmContext& ctx, const FormulaPtr& kb,
               const FormulaPtr& query) {
  engines::FiniteResult fr = ctx.engine->DegreeAt(
      *ctx.vocabulary, kb, query, ctx.domain_size, ctx.tolerances);
  Pr out;
  out.defined = fr.well_defined;
  out.value = fr.probability;
  return out;
}

bool Entails(const KlmContext& ctx, const Pr& p) {
  return p.defined && p.value >= ctx.threshold;
}

std::string Detail(const char* rule, double a, double b) {
  std::ostringstream out;
  out << rule << ": " << a << " vs " << b;
  return out.str();
}

}  // namespace

KlmCheck CheckAnd(const KlmContext& ctx, const FormulaPtr& kb,
                  const FormulaPtr& phi, const FormulaPtr& psi) {
  KlmCheck check;
  Pr p_phi = Probability(ctx, kb, phi);
  Pr p_psi = Probability(ctx, kb, psi);
  if (!Entails(ctx, p_phi) || !Entails(ctx, p_psi)) return check;
  check.applicable = true;
  Pr p_and = Probability(ctx, kb, Formula::And(phi, psi));
  // Union bound: Pr(φ∧ψ) ≥ Pr(φ) + Pr(ψ) - 1.
  double lower = p_phi.value + p_psi.value - 1.0;
  check.holds = p_and.defined &&
                p_and.value >= lower - ctx.probability_epsilon &&
                p_and.value >= ctx.threshold - (1.0 - p_phi.value) -
                                   (1.0 - p_psi.value) -
                                   ctx.probability_epsilon;
  check.detail = Detail("And", p_and.value, lower);
  return check;
}

KlmCheck CheckOr(const KlmContext& ctx, const FormulaPtr& kb,
                 const FormulaPtr& kb2, const FormulaPtr& phi) {
  KlmCheck check;
  Pr p1 = Probability(ctx, kb, phi);
  Pr p2 = Probability(ctx, kb2, phi);
  if (!Entails(ctx, p1) || !Entails(ctx, p2)) return check;
  check.applicable = true;
  Pr p_or = Probability(ctx, Formula::Or(kb, kb2), phi);
  // The Or proof (Theorem 5.3): Pr(¬φ|KB∨KB') ≤ Pr(¬φ|KB) + Pr(¬φ|KB').
  double not_bound = (1.0 - p1.value) + (1.0 - p2.value);
  check.holds = p_or.defined &&
                (1.0 - p_or.value) <= not_bound + ctx.probability_epsilon;
  check.detail = Detail("Or", 1.0 - p_or.value, not_bound);
  return check;
}

KlmCheck CheckCut(const KlmContext& ctx, const FormulaPtr& kb,
                  const FormulaPtr& theta, const FormulaPtr& phi) {
  KlmCheck check;
  Pr p_theta = Probability(ctx, kb, theta);
  if (!Entails(ctx, p_theta)) return check;
  FormulaPtr kb_theta = Formula::And(kb, theta);
  Pr p_phi_given_both = Probability(ctx, kb_theta, phi);
  if (!Entails(ctx, p_phi_given_both)) return check;
  check.applicable = true;
  Pr p_phi = Probability(ctx, kb, phi);
  // Pr(φ|KB) ≥ Pr(φ|KB∧θ)·Pr(θ|KB).
  double lower = p_phi_given_both.value * p_theta.value;
  check.holds =
      p_phi.defined && p_phi.value >= lower - ctx.probability_epsilon;
  check.detail = Detail("Cut", p_phi.value, lower);
  return check;
}

KlmCheck CheckCautiousMonotonicity(const KlmContext& ctx,
                                   const FormulaPtr& kb,
                                   const FormulaPtr& theta,
                                   const FormulaPtr& phi) {
  KlmCheck check;
  Pr p_theta = Probability(ctx, kb, theta);
  Pr p_phi = Probability(ctx, kb, phi);
  if (!Entails(ctx, p_theta) || !Entails(ctx, p_phi)) return check;
  check.applicable = true;
  Pr p_cond = Probability(ctx, Formula::And(kb, theta), phi);
  // Pr(φ|KB∧θ) ≥ 1 - (1-Pr(φ|KB))/Pr(θ|KB).
  double lower = 1.0 - (1.0 - p_phi.value) / p_theta.value;
  check.holds =
      p_cond.defined && p_cond.value >= lower - ctx.probability_epsilon;
  check.detail = Detail("CautiousMonotonicity", p_cond.value, lower);
  return check;
}

KlmCheck CheckRightWeakeningMonotone(const KlmContext& ctx,
                                     const FormulaPtr& kb,
                                     const FormulaPtr& phi,
                                     const FormulaPtr& psi) {
  KlmCheck check;
  Pr p_phi = Probability(ctx, kb, phi);
  if (!p_phi.defined) return check;
  check.applicable = true;
  Pr p_weaker = Probability(ctx, kb, Formula::Or(phi, psi));
  check.holds = p_weaker.defined &&
                p_weaker.value >= p_phi.value - ctx.probability_epsilon;
  check.detail = Detail("RightWeakening", p_weaker.value, p_phi.value);
  return check;
}

KlmCheck CheckReflexivity(const KlmContext& ctx, const FormulaPtr& kb) {
  KlmCheck check;
  Pr p = Probability(ctx, kb, kb);
  if (!p.defined) return check;  // KB unsatisfiable at this (N, τ)
  check.applicable = true;
  check.holds = p.value >= 1.0 - ctx.probability_epsilon;
  check.detail = Detail("Reflexivity", p.value, 1.0);
  return check;
}

KlmCheck CheckRationalMonotonicityBound(const KlmContext& ctx,
                                        const FormulaPtr& kb,
                                        const FormulaPtr& theta,
                                        const FormulaPtr& phi) {
  KlmCheck check;
  Pr p_theta = Probability(ctx, kb, theta);
  if (!p_theta.defined || p_theta.value <= 0.0) return check;
  Pr p_not_phi = Probability(ctx, kb, Formula::Not(phi));
  if (!p_not_phi.defined) return check;
  check.applicable = true;
  Pr p_cond = Probability(ctx, Formula::And(kb, theta),
                          Formula::Not(phi));
  double bound = p_not_phi.value / p_theta.value;
  check.holds = p_cond.defined &&
                p_cond.value <= bound + ctx.probability_epsilon;
  check.detail = Detail("RationalMonotonicity", p_cond.value, bound);
  return check;
}

KlmCheck CheckConditioningIdentity(const KlmContext& ctx,
                                   const FormulaPtr& kb,
                                   const FormulaPtr& theta,
                                   const FormulaPtr& phi) {
  KlmCheck check;
  Pr p_theta = Probability(ctx, kb, theta);
  if (!p_theta.defined || p_theta.value < 1.0 - ctx.probability_epsilon) {
    return check;
  }
  check.applicable = true;
  Pr lhs = Probability(ctx, kb, phi);
  Pr rhs = Probability(ctx, Formula::And(kb, theta), phi);
  check.holds = lhs.defined && rhs.defined &&
                std::fabs(lhs.value - rhs.value) <= 1e-9;
  check.detail = Detail("Conditioning", lhs.value, rhs.value);
  return check;
}

}  // namespace rwl::defaults
