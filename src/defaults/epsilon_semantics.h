// ε-semantics (Adams 1975; Geffner–Pearl 1990): propositional default rules
// B → C read as "µ(C|B) ≥ 1-ε for all small ε".
//
// This is the baseline propositional system the paper compares against in
// Section 6.  p-entailment is decided exactly with the Goldszmidt–Pearl
// tolerance procedure:
//
//   R is ε-consistent  iff  every nonempty R' ⊆ R contains a rule B → C
//   "tolerated" by R' (some world satisfies B ∧ C and every material
//   implication of R'); equivalently the greedy peel-off succeeds.
//
//   R p-entails B → C  iff  R ∪ {B → ¬C} is ε-inconsistent.
//
// A small propositional AST (Prop) is shared with the GMP90 system and the
// Theorem 6.1 translation into the unary statistical language.
#ifndef RWL_DEFAULTS_EPSILON_SEMANTICS_H_
#define RWL_DEFAULTS_EPSILON_SEMANTICS_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace rwl::defaults {

class Prop;
using PropPtr = std::shared_ptr<const Prop>;

// A propositional formula over variables 0..k-1.
class Prop {
 public:
  enum class Kind { kTrue, kFalse, kVar, kNot, kAnd, kOr };

  static PropPtr True();
  static PropPtr False();
  static PropPtr Var(int index);
  static PropPtr Not(PropPtr f);
  static PropPtr And(PropPtr lhs, PropPtr rhs);
  static PropPtr Or(PropPtr lhs, PropPtr rhs);

  Kind kind() const { return kind_; }
  int var() const { return var_; }
  const PropPtr& left() const { return left_; }
  const PropPtr& right() const { return right_; }

 private:
  explicit Prop(Kind kind) : kind_(kind) {}
  Kind kind_;
  int var_ = -1;
  PropPtr left_;
  PropPtr right_;
};

// Truth in the world encoded by bitmask `world` (bit i = variable i true).
bool EvalProp(const PropPtr& f, uint32_t world);

// A default rule B → C.
struct Rule {
  PropPtr antecedent;
  PropPtr consequent;
};

// True iff rule is tolerated by `rules` over `num_vars` variables: some
// world satisfies B ∧ C and every material implication B' ⇒ C' in `rules`.
bool Tolerated(const Rule& rule, const std::vector<Rule>& rules,
               int num_vars);

// ε-consistency of a rule set (Goldszmidt–Pearl greedy procedure).
bool EpsilonConsistent(const std::vector<Rule>& rules, int num_vars);

// p-entailment: R |= B → C in ε-semantics.
bool PEntails(const std::vector<Rule>& rules, const Rule& query,
              int num_vars);

// The same relations decided by the definitional characterization — every
// nonempty R' ⊆ R must contain a tolerated rule — enumerating all 2^|R|
// subsets over precomputed world masks instead of peeling greedily.  An
// independent algorithm for the same relation (the two are provably
// equivalent), kept as a differential oracle against PEntails: the `klm`
// planner strategy answers through this decider while `epsilon_semantics`
// answers through the greedy one, and the fuzzer compares them.
// Exponential in |R|; callers cap the rule count (defaults/fragment.h).
bool EpsilonConsistentBySubsets(const std::vector<Rule>& rules,
                                int num_vars);
bool PEntailsBySubsets(const std::vector<Rule>& rules, const Rule& query,
                       int num_vars);

std::string PropToString(const PropPtr& f,
                         const std::vector<std::string>& names);

}  // namespace rwl::defaults

#endif  // RWL_DEFAULTS_EPSILON_SEMANTICS_H_
