// KLM-style property checking for the finite-N random-worlds relation.
//
// Theorem 5.3 shows |∼rw satisfies the core KLM properties (And, Or, Cut,
// Cautious Monotonicity, Left Logical Equivalence, Right Weakening,
// Reflexivity).  The paper's proofs go through conditional-probability
// identities that hold *exactly* at every finite N and τ — so each property
// can be verified numerically, with no limit-taking, by comparing Pr_N^τ
// values produced by any FiniteEngine.  The property tests sweep these
// checkers over randomly generated KBs (src/workload).
#ifndef RWL_DEFAULTS_KLM_H_
#define RWL_DEFAULTS_KLM_H_

#include <string>

#include "src/engines/engine.h"

namespace rwl::defaults {

// All checks interpret "KB |∼ φ" as Pr_N^τ(φ|KB) ≥ threshold.
struct KlmContext {
  const engines::FiniteEngine* engine = nullptr;
  const logic::Vocabulary* vocabulary = nullptr;
  int domain_size = 8;
  semantics::ToleranceVector tolerances{0.05};
  double threshold = 1.0 - 1e-9;
  double probability_epsilon = 1e-9;
};

struct KlmCheck {
  bool applicable = false;  // the premises of the rule held
  bool holds = true;        // the conclusion followed (when applicable)
  std::string detail;
};

// And:  KB |∼ φ and KB |∼ ψ  ⇒  KB |∼ φ ∧ ψ.
KlmCheck CheckAnd(const KlmContext& ctx, const logic::FormulaPtr& kb,
                  const logic::FormulaPtr& phi, const logic::FormulaPtr& psi);

// Or:  KB |∼ φ and KB' |∼ φ  ⇒  KB ∨ KB' |∼ φ.
KlmCheck CheckOr(const KlmContext& ctx, const logic::FormulaPtr& kb,
                 const logic::FormulaPtr& kb2, const logic::FormulaPtr& phi);

// Cut:  KB |∼ θ and KB ∧ θ |∼ φ  ⇒  KB |∼ φ.
KlmCheck CheckCut(const KlmContext& ctx, const logic::FormulaPtr& kb,
                  const logic::FormulaPtr& theta,
                  const logic::FormulaPtr& phi);

// Cautious Monotonicity:  KB |∼ θ and KB |∼ φ  ⇒  KB ∧ θ |∼ φ.
KlmCheck CheckCautiousMonotonicity(const KlmContext& ctx,
                                   const logic::FormulaPtr& kb,
                                   const logic::FormulaPtr& theta,
                                   const logic::FormulaPtr& phi);

// Right Weakening on a specific valid implication φ ⇒ φ':
// KB |∼ φ implies KB |∼ φ' whenever Pr(φ'|KB) ≥ Pr(φ|KB); this checker
// verifies the monotonicity identity Pr(φ ∨ ψ | KB) ≥ Pr(φ | KB).
KlmCheck CheckRightWeakeningMonotone(const KlmContext& ctx,
                                     const logic::FormulaPtr& kb,
                                     const logic::FormulaPtr& phi,
                                     const logic::FormulaPtr& psi);

// Reflexivity: KB |∼ KB whenever the KB is satisfiable at this (N, τ).
KlmCheck CheckReflexivity(const KlmContext& ctx, const logic::FormulaPtr& kb);

// Rational Monotonicity (Theorem 5.5): the proof's finite-N inequality is
//   Pr(¬φ | KB ∧ θ) ≤ Pr(¬φ | KB) / Pr(θ | KB)
// whenever Pr(θ|KB) > 0; it holds exactly at every (N, τ) and yields the
// theorem in the limit.  This checker verifies the inequality.
KlmCheck CheckRationalMonotonicityBound(const KlmContext& ctx,
                                        const logic::FormulaPtr& kb,
                                        const logic::FormulaPtr& theta,
                                        const logic::FormulaPtr& phi);

// The stronger Proposition 5.2 identity behind Cut + Cautious Monotonicity:
// if Pr(θ|KB) = 1 then Pr(φ|KB) = Pr(φ|KB ∧ θ).  At finite N this holds as
// an exact conditional-probability identity.
KlmCheck CheckConditioningIdentity(const KlmContext& ctx,
                                   const logic::FormulaPtr& kb,
                                   const logic::FormulaPtr& theta,
                                   const logic::FormulaPtr& phi);

}  // namespace rwl::defaults

#endif  // RWL_DEFAULTS_KLM_H_
