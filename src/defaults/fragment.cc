#include "src/defaults/fragment.h"

#include <utility>

#include "src/logic/printer.h"

namespace rwl::defaults {

namespace {

using logic::Expr;
using logic::Formula;
using logic::FormulaPtr;

// Looks up (or registers) the propositional variable of a unary predicate.
int VarIndex(const std::string& predicate, std::vector<std::string>* names,
             int max_vars) {
  for (size_t i = 0; i < names->size(); ++i) {
    if ((*names)[i] == predicate) return static_cast<int>(i);
  }
  if (static_cast<int>(names->size()) >= max_vars) return -1;
  names->push_back(predicate);
  return static_cast<int>(names->size()) - 1;
}

// A boolean class expression in one subject term: atoms are unary
// predicates applied to `subject_is_var ? variable : constant` named
// `subject`; connectives are ¬ ∧ ∨ ⇒ ⇔ plus the boolean constants.
// Returns null (with a reason) outside that shape.
PropPtr ClassExprToProp(const FormulaPtr& f, bool subject_is_var,
                        const std::string& subject,
                        std::vector<std::string>* names, int max_vars,
                        std::string* why) {
  switch (f->kind()) {
    case Formula::Kind::kTrue:
      return Prop::True();
    case Formula::Kind::kFalse:
      return Prop::False();
    case Formula::Kind::kAtom: {
      if (f->terms().size() != 1) {
        *why = "non-unary atom " + f->predicate();
        return nullptr;
      }
      const logic::TermPtr& t = f->terms()[0];
      if (subject_is_var == t->is_constant() || t->name() != subject) {
        *why = "atom " + f->predicate() + " not about the subject " + subject;
        return nullptr;
      }
      int var = VarIndex(f->predicate(), names, max_vars);
      if (var < 0) {
        *why = "more than " + std::to_string(max_vars) + " unary predicates";
        return nullptr;
      }
      return Prop::Var(var);
    }
    case Formula::Kind::kNot: {
      PropPtr body = ClassExprToProp(f->body(), subject_is_var, subject,
                                     names, max_vars, why);
      return body == nullptr ? nullptr : Prop::Not(body);
    }
    case Formula::Kind::kAnd:
    case Formula::Kind::kOr:
    case Formula::Kind::kImplies:
    case Formula::Kind::kIff: {
      PropPtr lhs = ClassExprToProp(f->left(), subject_is_var, subject,
                                    names, max_vars, why);
      if (lhs == nullptr) return nullptr;
      PropPtr rhs = ClassExprToProp(f->right(), subject_is_var, subject,
                                    names, max_vars, why);
      if (rhs == nullptr) return nullptr;
      switch (f->kind()) {
        case Formula::Kind::kAnd:
          return Prop::And(lhs, rhs);
        case Formula::Kind::kOr:
          return Prop::Or(lhs, rhs);
        case Formula::Kind::kImplies:
          return Prop::Or(Prop::Not(lhs), rhs);
        default:  // kIff
          return Prop::And(Prop::Or(Prop::Not(lhs), rhs),
                           Prop::Or(Prop::Not(rhs), lhs));
      }
    }
    default:
      *why = "connective outside the propositional class fragment";
      return nullptr;
  }
}

// The subject constant of a ground class conjunct, or "" when the formula
// is not a ground class expression over one constant.
std::string GroundSubject(const FormulaPtr& f) {
  switch (f->kind()) {
    case Formula::Kind::kAtom:
      if (f->terms().size() != 1 || !f->terms()[0]->is_constant()) return "";
      return f->terms()[0]->name();
    case Formula::Kind::kNot:
      return GroundSubject(f->body());
    case Formula::Kind::kAnd:
    case Formula::Kind::kOr:
    case Formula::Kind::kImplies:
    case Formula::Kind::kIff: {
      std::string lhs = GroundSubject(f->left());
      std::string rhs = GroundSubject(f->right());
      if (lhs.empty() || rhs.empty() || lhs != rhs) return "";
      return lhs;
    }
    default:
      return "";
  }
}

}  // namespace

DefaultsInstance AnalyzeDefaultsInstance(
    const std::vector<logic::FormulaPtr>& conjuncts,
    const logic::FormulaPtr& query, const FragmentLimits& limits) {
  DefaultsInstance out;
  int tolerance_index = 0;  // shared subscript, fixed by the first rule
  PropPtr evidence = Prop::True();
  bool any_fact = false;

  for (const FormulaPtr& conjunct : conjuncts) {
    if (conjunct->kind() == Formula::Kind::kCompare) {
      // A hard default: proportion ≈_i 1 or ≈_i 0 (either orientation).
      if (conjunct->compare_op() != logic::CompareOp::kApproxEq) {
        out.reason = "non-≈ statistical conjunct";
        return out;
      }
      logic::ExprPtr stat = conjunct->expr_left();
      logic::ExprPtr constant = conjunct->expr_right();
      if (stat->kind() == Expr::Kind::kConstant) std::swap(stat, constant);
      if (constant->kind() != Expr::Kind::kConstant ||
          (stat->kind() != Expr::Kind::kProportion &&
           stat->kind() != Expr::Kind::kConditional)) {
        out.reason = "statistical conjunct is not proportion-vs-constant";
        return out;
      }
      const double value = constant->value();
      if (value != 1.0 && value != 0.0) {
        out.reason = "statistical value is neither 0 nor 1 (soft statistics "
                     "are outside the defaults fragment)";
        return out;
      }
      if (tolerance_index == 0) {
        tolerance_index = conjunct->tolerance_index();
      } else if (conjunct->tolerance_index() != tolerance_index) {
        out.reason = "rules do not share one tolerance subscript";
        return out;
      }
      if (stat->vars().size() != 1) {
        out.reason = "proportion over more than one variable";
        return out;
      }
      const std::string& var = stat->vars()[0];
      std::string why;
      PropPtr body = ClassExprToProp(stat->body(), /*subject_is_var=*/true,
                                     var, &out.names, limits.max_vars, &why);
      if (body == nullptr) {
        out.reason = why;
        return out;
      }
      PropPtr antecedent = Prop::True();
      if (stat->kind() == Expr::Kind::kConditional) {
        antecedent = ClassExprToProp(stat->cond(), /*subject_is_var=*/true,
                                     var, &out.names, limits.max_vars, &why);
        if (antecedent == nullptr) {
          out.reason = why;
          return out;
        }
      }
      out.rules.push_back(
          Rule{antecedent, value == 1.0 ? body : Prop::Not(body)});
      if (static_cast<int>(out.rules.size()) > limits.max_rules) {
        out.reason =
            "more than " + std::to_string(limits.max_rules) + " rules";
        return out;
      }
      continue;
    }

    // Otherwise the conjunct must be a ground class fact about the single
    // shared subject constant.
    std::string subject = GroundSubject(conjunct);
    if (subject.empty()) {
      out.reason = "conjunct is neither a hard default nor a ground class "
                   "fact: " + logic::ToString(conjunct);
      return out;
    }
    if (out.constant.empty()) {
      out.constant = subject;
    } else if (subject != out.constant) {
      out.reason = "ground facts about more than one constant";
      return out;
    }
    std::string why;
    PropPtr fact = ClassExprToProp(conjunct, /*subject_is_var=*/false,
                                   subject, &out.names, limits.max_vars,
                                   &why);
    if (fact == nullptr) {
      out.reason = why;
      return out;
    }
    evidence = any_fact ? Prop::And(evidence, fact) : fact;
    any_fact = true;
  }

  if (out.rules.empty()) {
    out.reason = "no default rules (no ≈ 0/1 statistical conjuncts)";
    return out;
  }

  // The query: a ground class expression about the same constant (a KB
  // without facts adopts the query's constant).
  std::string query_subject = GroundSubject(query);
  if (query_subject.empty()) {
    out.reason = "query is not a ground class expression over one constant";
    return out;
  }
  if (out.constant.empty()) {
    out.constant = query_subject;
  } else if (query_subject != out.constant) {
    out.reason = "query constant differs from the KB's subject constant";
    return out;
  }
  std::string why;
  PropPtr query_prop = ClassExprToProp(query, /*subject_is_var=*/false,
                                       out.constant, &out.names,
                                       limits.max_vars, &why);
  if (query_prop == nullptr) {
    out.reason = why;
    return out;
  }

  out.query = Rule{evidence, query_prop};
  out.num_vars = static_cast<int>(out.names.size());
  out.ok = true;
  return out;
}

}  // namespace rwl::defaults
