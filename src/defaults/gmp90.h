// The maximum-entropy approach to default reasoning of Goldszmidt, Morris
// and Pearl (GMP90), and its embedding into random worlds (Theorem 6.1).
//
// Given propositional rules R = {B_i → C_i}, the maximum-entropy PPD
// {µ*_ε} is the entropy-maximizing distribution over the 2^k propositional
// worlds subject to µ(C_i | B_i) ≥ 1-ε for every rule; B → C is an
// *ME-plausible consequence* of R when µ*_ε(C|B) → 1 as ε → 0.
//
// Theorem 6.1: under the translation p_i ↦ P_i(x), rule B → C ↦
// ||ψ_C(x)|ψ_B(x)||_x ≈_1 1 (the same ≈_1 everywhere), B → C is an
// ME-plausible consequence of R iff Pr_∞(ψ_C(c) | ⋀θ_r ∧ ψ_B(c)) = 1.
// TranslateRule/TranslateQuery build exactly this embedding so the
// equivalence can be exercised end-to-end against the rwl engines.
#ifndef RWL_DEFAULTS_GMP90_H_
#define RWL_DEFAULTS_GMP90_H_

#include <string>
#include <vector>

#include "src/core/knowledge_base.h"
#include "src/defaults/epsilon_semantics.h"
#include "src/logic/formula.h"

namespace rwl::defaults {

struct MePlausibleResult {
  bool feasible = true;          // constraint set nonempty at every ε
  bool plausible = false;        // µ*_ε(C|B) → 1
  std::vector<double> series;    // µ*_ε(C|B) per ε in the schedule
};

class Gmp90System {
 public:
  Gmp90System(int num_vars, std::vector<Rule> rules)
      : num_vars_(num_vars), rules_(std::move(rules)) {}

  // µ*_ε(C|B) for the given ε.  Returns a negative value when the
  // constraint set is infeasible or µ*(B) = 0.
  double ConditionalAtEpsilon(const Rule& query, double epsilon) const;

  MePlausibleResult MePlausible(
      const Rule& query,
      const std::vector<double>& epsilons = {0.05, 0.01, 0.002}) const;

  // GMP90's rule-strength fixed point.  Each rule i gets a strength z_i
  // satisfying
  //
  //   z_i = 1 + min { Σ_{j violated by w} z_j : w ⊨ B_i ∧ C_i }
  //
  // (the strength of a rule is one more than the cost of the cheapest world
  // verifying it), computed by iteration.  At the maximum-entropy PPD a
  // world w then carries weight ~ ε^{κ(w)} with κ(w) = Σ_{violated j} z_j,
  // so B → C is an ME-plausible consequence when the cheapest B∧C world is
  // strictly cheaper than the cheapest B∧¬C world.  Ties are decided by
  // second-order (constant-factor) terms, which the symbolic comparison
  // reports as undecided; MePlausible's numeric series covers those.
  // Returns empty when the fixed point diverges (ε-inconsistent rules).
  std::vector<int> RuleStrengths() const;

  // κ-comparison decision: +1 plausible, -1 anti-plausible (B → ¬C wins),
  // 0 tie at exponent level.
  int CompareByStrengths(const Rule& query) const;

  int num_vars() const { return num_vars_; }
  const std::vector<Rule>& rules() const { return rules_; }

 private:
  int num_vars_;
  std::vector<Rule> rules_;
};

// Theorem 6.1 translation: propositional formula over variables names[i]
// into the unary class formula with subject term `subject`.
logic::FormulaPtr PropToUnary(const PropPtr& f,
                              const std::vector<std::string>& names,
                              const logic::TermPtr& subject);

// Builds the statistical interpretation θ_r = ||ψ_C(x)|ψ_B(x)||_x ≈_1 1 of
// a rule (all rules share tolerance index 1, as GMP90 shares a single ε).
logic::FormulaPtr TranslateRule(const Rule& rule,
                                const std::vector<std::string>& names);

// Builds the full random-worlds instance for a query B → C: KB = ⋀ θ_r ∧
// ψ_B(c), query = ψ_C(c).
struct RwEmbedding {
  KnowledgeBase kb;
  logic::FormulaPtr query;
};
RwEmbedding TranslateQuery(const Gmp90System& system, const Rule& query,
                           const std::vector<std::string>& names,
                           const std::string& constant = "C0");

}  // namespace rwl::defaults

#endif  // RWL_DEFAULTS_GMP90_H_
