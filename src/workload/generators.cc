#include "src/workload/generators.h"

#include <algorithm>

#include "src/logic/builder.h"

namespace rwl::workload {
namespace {

using logic::Formula;
using logic::FormulaPtr;
using logic::TermPtr;

int UniformInt(std::mt19937* rng, int lo, int hi) {
  std::uniform_int_distribution<int> dist(lo, hi);
  return dist(*rng);
}

double UniformReal(std::mt19937* rng, double lo, double hi) {
  std::uniform_real_distribution<double> dist(lo, hi);
  return dist(*rng);
}

}  // namespace

std::vector<std::string> GeneratorPredicates(int num_predicates) {
  std::vector<std::string> out;
  for (int i = 0; i < num_predicates; ++i) {
    out.push_back("P" + std::to_string(i));
  }
  return out;
}

std::vector<std::string> GeneratorConstants(int num_constants) {
  std::vector<std::string> out;
  for (int i = 0; i < num_constants; ++i) {
    out.push_back("K" + std::to_string(i));
  }
  return out;
}

logic::FormulaPtr RandomClassExpr(int num_predicates, const TermPtr& subject,
                                  int depth, std::mt19937* rng) {
  if (depth <= 0 || UniformInt(rng, 0, 2) == 0) {
    FormulaPtr atom = logic::P("P" + std::to_string(
                                   UniformInt(rng, 0, num_predicates - 1)),
                               subject);
    if (UniformInt(rng, 0, 1) == 0) return atom;
    return Formula::Not(atom);
  }
  FormulaPtr lhs = RandomClassExpr(num_predicates, subject, depth - 1, rng);
  FormulaPtr rhs = RandomClassExpr(num_predicates, subject, depth - 1, rng);
  return UniformInt(rng, 0, 1) == 0 ? Formula::And(lhs, rhs)
                                    : Formula::Or(lhs, rhs);
}

logic::FormulaPtr RandomUnaryKb(const UnaryKbParams& params,
                                std::mt19937* rng) {
  std::vector<FormulaPtr> conjuncts;
  TermPtr x = logic::V("x");

  for (int i = 0; i < params.num_statements; ++i) {
    FormulaPtr body =
        RandomClassExpr(params.num_predicates, x, params.max_depth, rng);
    double value;
    if (UniformReal(rng, 0.0, 1.0) < params.default_fraction) {
      value = UniformInt(rng, 0, 1) == 0 ? 0.0 : 1.0;
    } else {
      value = UniformReal(rng, 0.15, 0.85);
    }
    int tolerance_index = i + 1;
    if (UniformInt(rng, 0, 1) == 0) {
      conjuncts.push_back(
          logic::ApproxEq(logic::Prop(body, {"x"}), value, tolerance_index));
    } else {
      FormulaPtr cond =
          RandomClassExpr(params.num_predicates, x, params.max_depth, rng);
      conjuncts.push_back(logic::ApproxEq(logic::CondProp(body, cond, {"x"}),
                                          value, tolerance_index));
    }
  }

  for (int i = 0; i < params.num_facts; ++i) {
    int which = UniformInt(rng, 0, params.num_constants - 1);
    TermPtr c = logic::C("K" + std::to_string(which));
    conjuncts.push_back(
        RandomClassExpr(params.num_predicates, c, params.max_depth, rng));
  }

  return Formula::AndAll(conjuncts);
}

namespace {

// At the default bias (exactly 1/3) this must consume the RNG identically
// to the historical `UniformInt(rng, 0, 2) == 0` draw, so seeded workloads
// (tests, shrunk corpus cases) regenerate the same formulas.
bool DrawProportionQuery(const UnaryKbParams& params, std::mt19937* rng) {
  if (params.proportion_query_bias == 1.0 / 3.0) {
    return UniformInt(rng, 0, 2) == 0;
  }
  return UniformReal(rng, 0.0, 1.0) < params.proportion_query_bias;
}

}  // namespace

logic::FormulaPtr RandomQuery(const UnaryKbParams& params,
                              std::mt19937* rng) {
  if (params.num_constants > 0 && !DrawProportionQuery(params, rng)) {
    int which = UniformInt(rng, 0, params.num_constants - 1);
    TermPtr c = logic::C("K" + std::to_string(which));
    return RandomClassExpr(params.num_predicates, c, params.max_depth, rng);
  }
  TermPtr x = logic::V("x");
  FormulaPtr body =
      RandomClassExpr(params.num_predicates, x, params.max_depth, rng);
  return logic::ApproxLeq(logic::Prop(body, {"x"}),
                          UniformReal(rng, 0.3, 0.9), 1);
}

std::vector<logic::FormulaPtr> RandomQueryBatch(const UnaryKbParams& params,
                                                int count, std::mt19937* rng) {
  std::vector<logic::FormulaPtr> queries;
  queries.reserve(count);
  for (int i = 0; i < count; ++i) {
    if (!queries.empty() && UniformInt(rng, 0, 3) == 0) {
      // Exact duplicate of an earlier query (pointer-equal by interning).
      queries.push_back(queries[UniformInt(
          rng, 0, static_cast<int>(queries.size()) - 1)]);
      continue;
    }
    queries.push_back(RandomQuery(params, rng));
  }
  return queries;
}

std::vector<std::string> GeneratorBinaryPredicates(int num_binary) {
  std::vector<std::string> out;
  for (int i = 0; i < num_binary; ++i) {
    out.push_back("R" + std::to_string(i));
  }
  return out;
}

namespace {

// A ground literal over a random binary predicate and random constants.
FormulaPtr RandomBinaryFact(const MixedKbParams& params, std::mt19937* rng) {
  std::string r = "R" + std::to_string(UniformInt(rng, 0, params.num_binary - 1));
  TermPtr a =
      logic::C("K" + std::to_string(UniformInt(rng, 0, params.num_constants - 1)));
  TermPtr b =
      logic::C("K" + std::to_string(UniformInt(rng, 0, params.num_constants - 1)));
  FormulaPtr atom = logic::P(r, a, b);
  return UniformInt(rng, 0, 1) == 0 ? atom : Formula::Not(atom);
}

// Quantified axioms drawn from shapes that keep the KB satisfiable under
// the uniform prior at small N (each constrains without contradicting the
// ground facts outright).
FormulaPtr RandomRelationalAxiom(const MixedKbParams& params,
                                 std::mt19937* rng) {
  std::string r = "R" + std::to_string(UniformInt(rng, 0, params.num_binary - 1));
  TermPtr x = logic::V("x");
  TermPtr y = logic::V("y");
  switch (UniformInt(rng, 0, 3)) {
    case 0:  // reflexivity
      return Formula::ForAll("x", logic::P(r, x, x));
    case 1:  // symmetry
      return Formula::ForAll(
          "x", Formula::ForAll(
                   "y", Formula::Implies(logic::P(r, x, y),
                                         logic::P(r, y, x))));
    case 2:  // seriality
      return Formula::ForAll("x",
                             Formula::Exists("y", logic::P(r, x, y)));
    default:  // a relational default: R-edges usually land on P0-elements
      if (params.num_unary == 0) {
        return Formula::Exists(
            "x", Formula::Exists("y", logic::P(r, x, y)));
      }
      return logic::ApproxEq(
          logic::CondProp(logic::P("P0", y), logic::P(r, x, y), {"x", "y"}),
          UniformReal(rng, 0.3, 0.8), 1);
  }
}

}  // namespace

logic::FormulaPtr RandomMixedKb(const MixedKbParams& params,
                                std::mt19937* rng) {
  std::vector<FormulaPtr> conjuncts;
  TermPtr x = logic::V("x");

  for (int i = 0; i < params.num_statements && params.num_unary > 0; ++i) {
    FormulaPtr body =
        RandomClassExpr(params.num_unary, x, params.max_depth, rng);
    double value = UniformReal(rng, 0.0, 1.0) < params.default_fraction
                       ? (UniformInt(rng, 0, 1) == 0 ? 0.0 : 1.0)
                       : UniformReal(rng, 0.15, 0.85);
    conjuncts.push_back(
        logic::ApproxEq(logic::Prop(body, {"x"}), value, i + 1));
  }
  for (int i = 0; i < params.num_axioms && params.num_binary > 0; ++i) {
    conjuncts.push_back(RandomRelationalAxiom(params, rng));
  }
  for (int i = 0; i < params.num_facts && params.num_constants > 0; ++i) {
    if (params.num_binary > 0 && UniformInt(rng, 0, 1) == 0) {
      conjuncts.push_back(RandomBinaryFact(params, rng));
    } else if (params.num_unary > 0) {
      TermPtr c = logic::C(
          "K" + std::to_string(UniformInt(rng, 0, params.num_constants - 1)));
      conjuncts.push_back(
          RandomClassExpr(params.num_unary, c, params.max_depth, rng));
    }
  }
  return Formula::AndAll(conjuncts);
}

logic::FormulaPtr RandomMixedQuery(const MixedKbParams& params,
                                   std::mt19937* rng) {
  switch (UniformInt(rng, 0, 2)) {
    case 0:
      if (params.num_binary > 0 && params.num_constants > 0) {
        return RandomBinaryFact(params, rng);
      }
      [[fallthrough]];
    case 1:
      if (params.num_unary > 0 && params.num_constants > 0) {
        TermPtr c = logic::C(
            "K" +
            std::to_string(UniformInt(rng, 0, params.num_constants - 1)));
        return RandomClassExpr(params.num_unary, c, params.max_depth, rng);
      }
      [[fallthrough]];
    default: {
      if (params.num_binary == 0) return Formula::True();
      std::string r =
          "R" + std::to_string(UniformInt(rng, 0, params.num_binary - 1));
      TermPtr x = logic::V("x");
      TermPtr y = logic::V("y");
      return UniformInt(rng, 0, 1) == 0
                 ? Formula::Exists(
                       "x", Formula::Exists("y", logic::P(r, x, y)))
                 : Formula::ForAll(
                       "x", Formula::Exists("y", logic::P(r, x, y)));
    }
  }
}

ChainKb RandomChainKb(int depth, std::mt19937* rng) {
  ChainKb out;
  std::vector<FormulaPtr> conjuncts;
  TermPtr x = logic::V("x");
  TermPtr k0 = logic::C("K0");

  // Chain C0 ⊆ C1 ⊆ ... via universal implications.
  for (int i = 0; i + 1 < depth; ++i) {
    conjuncts.push_back(logic::Formula::ForAll(
        "x", Formula::Implies(logic::P("C" + std::to_string(i), x),
                              logic::P("C" + std::to_string(i + 1), x))));
  }
  // Intervals widen strictly as classes grow EXCEPT the designated tightest
  // level, picked uniformly.
  int tightest = UniformInt(rng, 0, depth - 1);
  double center = UniformReal(rng, 0.3, 0.7);
  double half = 0.02;
  std::vector<std::pair<double, double>> intervals(depth);
  // Assign the tightest interval, then widen outward in both directions.
  for (int i = 0; i < depth; ++i) {
    double width = half + 0.08 * (std::abs(i - tightest) + (i == tightest ? 0 : 1));
    double lo = std::max(0.0, center - width);
    double hi = std::min(1.0, center + width);
    intervals[i] = {lo, hi};
  }
  // Make the non-tightest levels strictly wider than the tightest.
  for (int i = 0; i < depth; ++i) {
    FormulaPtr cls = logic::P("C" + std::to_string(i), x);
    conjuncts.push_back(logic::InInterval(
        intervals[i].first, 2 * i + 1,
        logic::CondProp(logic::P("T", x), cls, {"x"}), intervals[i].second,
        2 * i + 2));
  }
  conjuncts.push_back(logic::P("C0", k0));
  out.kb = Formula::AndAll(conjuncts);
  out.query = logic::P("T", k0);
  out.tightest_lo = intervals[tightest].first;
  out.tightest_hi = intervals[tightest].second;
  return out;
}

ExceptionChainKb RandomExceptionChainKb(const ExceptionChainParams& params,
                                        std::mt19937* rng) {
  ExceptionChainKb out;
  const int depth = std::max(params.depth, 2);
  std::vector<FormulaPtr> conjuncts;
  TermPtr x = logic::V("x");
  TermPtr k0 = logic::C("K0");

  // Hard subset defaults L_i ⊆_≈ L_{i+1} (statistical, not universal:
  // universal implications would leave the defaults fragment).
  for (int i = 0; i + 1 < depth; ++i) {
    conjuncts.push_back(logic::ApproxEq(
        logic::CondProp(logic::P("L" + std::to_string(i + 1), x),
                        logic::P("L" + std::to_string(i), x), {"x"}),
        1.0, 1));
  }
  // Per-level F-polarity, alternating unless the level inherits.
  bool flies = UniformInt(rng, 0, 1) == 1;
  std::vector<bool> polarity(depth);
  polarity[0] = flies;
  for (int i = 1; i < depth; ++i) {
    const bool keep = UniformReal(rng, 0.0, 1.0) < params.keep_polarity;
    polarity[i] = keep ? polarity[i - 1] : !polarity[i - 1];
  }
  for (int i = 0; i < depth; ++i) {
    conjuncts.push_back(logic::ApproxEq(
        logic::CondProp(logic::P("F", x),
                        logic::P("L" + std::to_string(i), x), {"x"}),
        polarity[i] ? 1.0 : 0.0, 1));
  }
  conjuncts.push_back(logic::P("L0", k0));

  out.kb = Formula::AndAll(conjuncts);
  out.queries.push_back(logic::P("F", k0));
  out.queries.push_back(logic::P("L" + std::to_string(depth - 1), k0));
  out.expected_f = polarity[0] ? 1.0 : 0.0;
  return out;
}

EvidenceKb RandomEvidenceKb(const EvidenceKbParams& params,
                            std::mt19937* rng) {
  EvidenceKb out;
  const int m = std::max(params.num_sources, 2);
  std::vector<FormulaPtr> conjuncts;
  TermPtr x = logic::V("x");
  TermPtr k0 = logic::C("K0");

  for (int i = 0; i < m; ++i) {
    double alpha;
    if (UniformReal(rng, 0.0, 1.0) < params.extreme_fraction) {
      alpha = UniformInt(rng, 0, 1) == 0 ? 0.0 : 1.0;
    } else {
      alpha = UniformReal(rng, 0.1, 0.9);
    }
    out.alphas.push_back(alpha);
    FormulaPtr source = logic::P("E" + std::to_string(i), x);
    conjuncts.push_back(logic::ApproxEq(
        logic::CondProp(logic::P("T", x), source, {"x"}), alpha, i + 1));
  }
  for (int i = 0; i < m; ++i) {
    conjuncts.push_back(logic::P("E" + std::to_string(i), k0));
  }
  // The load-bearing part of the Theorem 5.26 shape: every pair of
  // reference classes is essentially disjoint.
  for (int i = 0; i < m; ++i) {
    for (int j = i + 1; j < m; ++j) {
      conjuncts.push_back(logic::ExistsUnique(
          "x", Formula::And(logic::P("E" + std::to_string(i), x),
                            logic::P("E" + std::to_string(j), x))));
    }
  }
  out.kb = Formula::AndAll(conjuncts);
  out.query = logic::P("T", k0);
  return out;
}

ReferenceClassKb RandomReferenceClassKb(std::mt19937* rng) {
  ReferenceClassKb out;
  std::vector<FormulaPtr> conjuncts;
  TermPtr x = logic::V("x");
  TermPtr k0 = logic::C("K0");

  out.alpha0 = UniformReal(rng, 0.1, 0.45);
  out.alpha1 = UniformReal(rng, 0.55, 0.9);
  if (UniformInt(rng, 0, 1) == 0) std::swap(out.alpha0, out.alpha1);
  conjuncts.push_back(logic::ApproxEq(
      logic::CondProp(logic::P("T", x), logic::P("E0", x), {"x"}),
      out.alpha0, 1));
  conjuncts.push_back(logic::ApproxEq(
      logic::CondProp(logic::P("T", x), logic::P("E1", x), {"x"}),
      out.alpha1, 2));
  conjuncts.push_back(logic::P("E0", k0));
  conjuncts.push_back(logic::P("E1", k0));
  out.has_specificity = UniformInt(rng, 0, 1) == 0;
  if (out.has_specificity) {
    conjuncts.push_back(Formula::ForAll(
        "x", Formula::Implies(logic::P("E0", x), logic::P("E1", x))));
  }
  out.kb = Formula::AndAll(conjuncts);
  out.query = logic::P("T", k0);
  return out;
}

std::vector<defaults::Rule> RandomRuleSet(int num_vars, int num_rules,
                                          std::mt19937* rng) {
  using defaults::Prop;
  using defaults::PropPtr;
  std::vector<defaults::Rule> rules;
  for (int i = 0; i < num_rules; ++i) {
    // Antecedent: conjunction of 1-2 literals.
    int num_lits = UniformInt(rng, 1, 2);
    PropPtr antecedent;
    for (int j = 0; j < num_lits; ++j) {
      PropPtr lit = Prop::Var(UniformInt(rng, 0, num_vars - 1));
      if (UniformInt(rng, 0, 3) == 0) lit = Prop::Not(lit);
      antecedent = antecedent == nullptr ? lit : Prop::And(antecedent, lit);
    }
    PropPtr consequent = Prop::Var(UniformInt(rng, 0, num_vars - 1));
    if (UniformInt(rng, 0, 1) == 0) consequent = Prop::Not(consequent);
    rules.push_back(defaults::Rule{antecedent, consequent});
  }
  return rules;
}

}  // namespace rwl::workload
