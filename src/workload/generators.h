// Workload generators for property tests and benchmarks: random unary KBs,
// taxonomy chains, and propositional default-rule sets.
//
// All generators are deterministic given the RNG state, so failures
// reproduce from the seed alone.
#ifndef RWL_WORKLOAD_GENERATORS_H_
#define RWL_WORKLOAD_GENERATORS_H_

#include <random>
#include <string>
#include <vector>

#include "src/defaults/epsilon_semantics.h"
#include "src/logic/formula.h"

namespace rwl::workload {

struct UnaryKbParams {
  int num_predicates = 3;
  int num_constants = 1;
  // Statistical conjuncts ||B|C||_x ≈ v with random class expressions.
  int num_statements = 2;
  // Class facts about the constants.
  int num_facts = 1;
  // Probability that a statement is a default (v drawn from {0, 1}) rather
  // than a mid-range statistic.
  double default_fraction = 0.0;
  // Maximum nesting depth of the generated class expressions (1 reproduces
  // the historical shallow shapes; the fuzzer drives this to 2-3).
  int max_depth = 1;
  // Probability that RandomQuery produces a proportion comparison instead
  // of a class expression about a constant.  The fuzzer raises this to
  // stress the VM's fused-proportion popcount kernels and the exact
  // engine's counting-loop collapse.
  double proportion_query_bias = 1.0 / 3.0;
};

// Predicate names used by the generator: P0..P{k-1}; constants K0..K{m-1}.
std::vector<std::string> GeneratorPredicates(int num_predicates);
std::vector<std::string> GeneratorConstants(int num_constants);

// A random boolean class expression over P0..P{k-1} applied to `subject`.
logic::FormulaPtr RandomClassExpr(int num_predicates,
                                  const logic::TermPtr& subject, int depth,
                                  std::mt19937* rng);

// A random unary KB (a conjunction) following the params.
logic::FormulaPtr RandomUnaryKb(const UnaryKbParams& params,
                                std::mt19937* rng);

// A random query formula suited to the generated KBs: a class expression
// about a random constant, or a proportion comparison.
logic::FormulaPtr RandomQuery(const UnaryKbParams& params, std::mt19937* rng);

// A batch of queries for the same KB, including occasional exact
// duplicates (hash-consing makes them pointer-equal, which exercises the
// batch API's dedup path).
std::vector<logic::FormulaPtr> RandomQueryBatch(const UnaryKbParams& params,
                                                int count, std::mt19937* rng);

// ---- Non-unary scenarios (outside the profile/maxent fragment) ----
//
// KBs mixing unary statistics with binary-predicate facts and quantified
// relational axioms: the fragment only the exact and Monte-Carlo engines
// reach, generated for the differential fuzzer.
struct MixedKbParams {
  int num_unary = 2;
  int num_binary = 1;
  int num_constants = 2;
  // Ground relational/class literals about the constants.
  int num_facts = 2;
  // Quantified axioms over the binary predicates, drawn from a
  // satisfiable-by-construction pool (reflexivity, symmetry, seriality,
  // ground-implication shapes).
  int num_axioms = 1;
  // Unary statistical conjuncts (as in UnaryKbParams).
  int num_statements = 1;
  double default_fraction = 0.3;
  int max_depth = 2;
};

// Binary predicate names used by the generator: R0..R{k-1}.
std::vector<std::string> GeneratorBinaryPredicates(int num_binary);

logic::FormulaPtr RandomMixedKb(const MixedKbParams& params,
                                std::mt19937* rng);

// A query for mixed KBs: a ground relational literal, a quantified
// relational sentence, or a unary class expression about a constant.
logic::FormulaPtr RandomMixedQuery(const MixedKbParams& params,
                                   std::mt19937* rng);

// A taxonomy-chain KB for strength-rule experiments: classes
// C0 ⊆ C1 ⊆ ... ⊆ C{depth-1}, statistics for a target predicate T on each
// level with widening intervals, membership fact C0(K0).
struct ChainKb {
  logic::FormulaPtr kb;
  logic::FormulaPtr query;      // T(K0)
  double tightest_lo = 0.0;
  double tightest_hi = 1.0;
};
ChainKb RandomChainKb(int depth, std::mt19937* rng);

// Random propositional default rules over `num_vars` variables, each rule
// from a random conjunction of literals to a random literal.
std::vector<defaults::Rule> RandomRuleSet(int num_vars, int num_rules,
                                          std::mt19937* rng);

// ---- Defaults-with-exceptions scenarios (the penguin-chain family) ----
//
// Classes L0 ⊆ L1 ⊆ ... ⊆ L{depth-1} linked by hard defaults
// ||L{i+1}(x) | L_i(x)||_x ≈_1 1, a flying-style property F whose polarity
// defaults per level (exception levels flip it), and the membership fact
// L0(K0).  Every conjunct stays inside the propositional-defaults fragment
// (defaults/fragment.h), so the epsilon_semantics/klm/gmp90 strategies
// apply; the profile sweep decides the same instances numerically, which
// the differential `defaults` check exploits.
struct ExceptionChainParams {
  int depth = 3;  // number of levels (3 = the classic penguin triad)
  // Probability that a level inherits the polarity below it instead of
  // being an exception.  0 makes every level an exception (maximal
  // alternation).
  double keep_polarity = 0.25;
};
struct ExceptionChainKb {
  logic::FormulaPtr kb;
  // F(K0) (the interesting one) and L{depth-1}(K0) (chain transitivity).
  std::vector<logic::FormulaPtr> queries;
  // The specificity (maximum-entropy) answer for F(K0): the polarity of
  // the most specific level.  p-entailment may abstain on deep
  // alternations — this is the gmp90/profile value, not a p-entailment
  // promise.
  double expected_f = 0.0;
};
ExceptionChainKb RandomExceptionChainKb(const ExceptionChainParams& params,
                                        std::mt19937* rng);

// ---- Evidence-combination scenarios (Theorem 5.26) ----
//
// m independent mass functions over a shared frame: pairwise
// essentially-disjoint reference classes E_i each reporting
// ||T(x)|E_i(x)||_x ≈_{i+1} α_i, membership facts E_i(K0), the C(m,2)
// ∃!x (E_i(x) ∧ E_j(x)) conjuncts, query T(K0).  The exact limit is
// Dempster's rule over the α_i.
struct EvidenceKbParams {
  int num_sources = 2;  // m ≥ 2
  // Probability that a statistic is extreme (α ∈ {0, 1}); two opposing
  // extremes exercise the conflicting-hard-defaults edge.
  double extreme_fraction = 0.1;
};
struct EvidenceKb {
  logic::FormulaPtr kb;
  logic::FormulaPtr query;  // T(K0)
  std::vector<double> alphas;
};
EvidenceKb RandomEvidenceKb(const EvidenceKbParams& params,
                            std::mt19937* rng);

// ---- Competing-reference-class scenarios ----
//
// Two overlapping reference classes with conflicting statistics for the
// same target — ||T(x)|E0(x)||_x ≈_1 α0, ||T(x)|E1(x)||_x ≈_2 α1, both
// membership facts — and, half the time, the specificity conjunct
// ∀x (E0(x) ⇒ E1(x)) that lets the symbolic strength rule prefer the
// subset's statistic.  Deliberately *outside* the Theorem 5.26 shape (no
// essential-disjointness conjuncts): exercises the evidence strategy's
// rejection path and the planner's fallback to the numeric sweeps.
struct ReferenceClassKb {
  logic::FormulaPtr kb;
  logic::FormulaPtr query;  // T(K0)
  bool has_specificity = false;
  double alpha0 = 0.0;
  double alpha1 = 0.0;
};
ReferenceClassKb RandomReferenceClassKb(std::mt19937* rng);

}  // namespace rwl::workload

#endif  // RWL_WORKLOAD_GENERATORS_H_
