// Profile engine: exact Pr_N^τ for unary-relational vocabularies at
// realistic domain sizes.
//
// For a vocabulary of k unary predicates and m constants, a world is
// determined by (i) which of the 2^k atoms (Section 6) each domain element
// satisfies and (ii) the denotations of the constants.  Worlds therefore
// group into *profiles*: an atom-count vector ⃗n (Σ n_a = N) together with a
// placement of the constants (a coincidence pattern — which constants denote
// the same element — plus an atom per group).  The number of worlds in a
// profile is
//
//     multinomial(N; ⃗n) × Π_a falling(n_a, d_a)
//
// where d_a is the number of distinct constant-elements placed in atom a.
// Truth of any L≈ sentence is constant across a profile and is decided
// symbolically by evaluating over element classes (named constant elements
// plus one anonymous pool per atom), so Pr_N^τ is computed exactly by a
// DFS over profiles with log-space weights.  Linear proportion constraints
// extracted from the KB prune the DFS; pruning is conservative (it never
// discards a satisfiable profile) and the leaf evaluation re-checks the KB
// semantically, so pruning affects speed only.
#ifndef RWL_ENGINES_PROFILE_ENGINE_H_
#define RWL_ENGINES_PROFILE_ENGINE_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "src/engines/engine.h"
#include "src/logic/formula.h"
#include "src/logic/vocabulary.h"

namespace rwl::engines {

// Filter-patches one recorded profile world list (a type-erased context
// blob stored under a "profile.worlds|..." key) for a signature-preserving
// append mutation: every recorded (profile, placement) world is re-checked
// against the appended conjuncts and survivors keep their order and
// log-weights, so replaying the patched list is bit-identical to a fresh
// DFS under the new KB (new worlds ⊆ old worlds, same enumeration order).
// Returns the patched list with *bytes_out set to its ByteSize, or null
// when the blob is not a valid recorded list (marker or tombstone) — the
// caller then lets the point recompute lazily under the new salt.
std::shared_ptr<const void> PatchProfileWorlds(
    const std::shared_ptr<const void>& blob,
    const logic::Vocabulary& vocabulary,
    const std::vector<logic::FormulaPtr>& appended, size_t* bytes_out);

// Prior over worlds (Section 7.3).
enum class Prior {
  // The random-worlds prior: every world equally likely (the paper's main
  // method).
  kUniformWorlds,
  // The random-propensities prior of [BGHK92]: each unary predicate P_i has
  // an unknown propensity p_i ~ Uniform[0,1]; domain elements satisfy P_i
  // independently with probability p_i, predicates independent.  Worlds
  // then weigh as Π_i c_i!(N-c_i)!/(N+1)! where c_i = |P_i|.  Unlike
  // random worlds, this prior *learns from samples* (and, as the paper
  // notes, sometimes overlearns); see bench_propensities.
  kRandomPropensities,
};

class ProfileEngine : public FiniteEngine {
 public:
  struct Options {
    // Abort (FiniteResult::exhausted) after visiting this many DFS leaves.
    uint64_t max_leaves = 2'000'000;
    // Refuse vocabularies with more atoms than this.
    int max_atoms = 256;
    // Refuse KBs with more constants than this (placements grow as
    // Bell(m) · atoms^m).
    int max_constants = 6;
    Prior prior = Prior::kUniformWorlds;
  };

  ProfileEngine() = default;
  explicit ProfileEngine(const Options& options) : options_(options) {}

  std::string name() const override { return "profile"; }

  // Un-hide the context-aware overloads.
  using FiniteEngine::DegreeAt;
  using FiniteEngine::Supports;

  bool Supports(const logic::Vocabulary& vocabulary,
                const logic::FormulaPtr& kb, const logic::FormulaPtr& query,
                int domain_size) const override;

  FiniteResult DegreeAt(const logic::Vocabulary& vocabulary,
                        const logic::FormulaPtr& kb,
                        const logic::FormulaPtr& query, int domain_size,
                        const semantics::ToleranceVector& tolerances)
      const override;

  std::string CacheSalt() const override;

  // Planner cost model: raw profile count C(N+A-1, A-1) (capped at the
  // leaf budget — the DFS aborts there) × constant placements × the
  // compiled KB+query program length.
  CostEstimate EstimateCost(const QueryContext& ctx,
                            const logic::FormulaPtr& query,
                            int domain_size) const override;

 protected:
  // Context path: the DFS over profiles is query-independent up to the leaf
  // evaluation, so the first query at each (N, ⃗τ) records the satisfying
  // (profile, placement) world list into the context and every later query
  // replays it — an evaluation per surviving world instead of a DFS over
  // all of them.  Replay accumulates the same log-weights in the same
  // order, so answers are bit-identical to the uncached computation.
  FiniteResult DegreeAtInContext(QueryContext& ctx,
                                 const logic::FormulaPtr& query,
                                 int domain_size,
                                 const semantics::ToleranceVector& tolerances)
      const override;

 private:
  Options options_;
};

}  // namespace rwl::engines

#endif  // RWL_ENGINES_PROFILE_ENGINE_H_
