// Monte-Carlo engine: Pr_N^τ estimation by uniform world sampling.
//
// Samples worlds uniformly (every predicate cell an independent fair coin,
// every function cell uniform over the domain — exactly the random-worlds
// prior), rejects those violating the KB, and estimates Pr_N^τ(φ|KB) as the
// accepted fraction satisfying φ.  This covers vocabularies the profile
// engine cannot (binary and higher-arity predicates, function symbols) at
// domain sizes the exact engine cannot reach — *provided* the KB is not
// too improbable under the prior: rejection sampling degrades as Pr(KB)
// shrinks, which is why KBs built from near-extreme defaults (≈ 1 with
// tiny τ) need the profile engine instead.  The result reports the
// acceptance count so callers can judge the estimate.
#ifndef RWL_ENGINES_MONTECARLO_ENGINE_H_
#define RWL_ENGINES_MONTECARLO_ENGINE_H_

#include <cstdint>
#include <mutex>

#include "src/engines/engine.h"

namespace rwl::semantics {
struct CompiledFormula;
}  // namespace rwl::semantics

namespace rwl::engines {

class MonteCarloEngine : public FiniteEngine {
 public:
  struct Options {
    uint64_t num_samples = 200'000;
    // Below this many accepted samples the estimate is reported as not
    // well-defined (indistinguishable from an unsatisfiable KB).
    uint64_t min_accepted = 50;
    uint64_t seed = 20260612;
    // Refuse instances whose world representation exceeds this many cells
    // (sampling time is linear in it).
    int64_t max_cells = 1'000'000;
    // Worker-pool width for the sample loop (0 = one per hardware thread).
    // The stream is split into a fixed number of shards with per-shard
    // derived seeds, so estimates are bit-identical at every setting.
    int num_threads = 0;
  };

  MonteCarloEngine() = default;
  explicit MonteCarloEngine(const Options& options) : options_(options) {}

  std::string name() const override { return "montecarlo"; }

  // Un-hide the context-aware overloads.
  using FiniteEngine::DegreeAt;
  using FiniteEngine::Supports;

  bool Supports(const logic::Vocabulary& vocabulary,
                const logic::FormulaPtr& kb, const logic::FormulaPtr& query,
                int domain_size) const override;

  FiniteResult DegreeAt(const logic::Vocabulary& vocabulary,
                        const logic::FormulaPtr& kb,
                        const logic::FormulaPtr& query, int domain_size,
                        const semantics::ToleranceVector& tolerances)
      const override;

  // Sampling is deterministic in (options, N, ⃗τ, query), so results are
  // safe to memoize; the salt pins the options.
  std::string CacheSalt() const override;

  // Estimates carry binomial sampling error; differential comparisons must
  // budget for it.
  ResultClass result_class() const override {
    return ResultClass::kStatistical;
  }

  // Planner cost model: samples × world cells, with the predicted error
  // from the KB acceptance rate — observed from an earlier run in this
  // context when available, otherwise a prior from the KB's statistical
  // conjuncts (rejection sampling degrades as Pr(KB) shrinks).
  CostEstimate EstimateCost(const QueryContext& ctx,
                            const logic::FormulaPtr& query,
                            int domain_size) const override;

  // Diagnostics from the most recent DegreeAt call (thread-safe: DegreeAt
  // may run on the limit-sweep worker pool).
  struct Stats {
    uint64_t sampled = 0;
    uint64_t accepted = 0;
  };
  Stats last_stats() const {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    return stats_;
  }

 protected:
  // Context path: reuses the context's compiled programs for the KB and
  // query instead of recompiling per (N, ⃗τ) point.
  FiniteResult DegreeAtInContext(QueryContext& ctx,
                                 const logic::FormulaPtr& query,
                                 int domain_size,
                                 const semantics::ToleranceVector& tolerances)
      const override;

 private:
  FiniteResult Sample(const logic::Vocabulary& vocabulary,
                      const semantics::CompiledFormula& kb,
                      const semantics::CompiledFormula& query,
                      int domain_size,
                      const semantics::ToleranceVector& tolerances) const;

  Options options_;
  mutable std::mutex stats_mutex_;
  mutable Stats stats_;
};

}  // namespace rwl::engines

#endif  // RWL_ENGINES_MONTECARLO_ENGINE_H_
