// The lazy record-and-replay protocol shared by the profile and exact
// engines' per-(N, ⃗τ) world-list caches.
//
// The satisfying worlds at one sweep point are query-independent, but
// recording them costs time and memory that a lone query would waste, so
// the protocol is three-step:
//
//   1st distinct query at a point  → compute plainly, leave a kSeenOnce
//                                    marker in the context blob cache;
//   2nd distinct query             → compute with recording, publish the
//                                    list (or a kTooBig tombstone when it
//                                    blew the engine's size cap);
//   later queries                  → replay the recorded list.
//
// Identical queries never reach step 2: they hit the FiniteEngine memo
// layer above this.  Replay implementations must accumulate in recorded
// order so answers stay bit-identical to the plain computation.
//
// Contexts with eager_world_recording() skip the marker step and record
// on the FIRST computation.  The service catalog enables this on snapshot
// contexts: a recorded list is the unit QueryContext::ApplyDelta patches
// across versions, and a tenant KB answers the same sweep points for its
// whole lifetime, so the lone-query-wastes-memory concern behind the lazy
// protocol does not apply there.  Recording never changes the result, so
// either mode stays bit-identical to the plain computation.
#ifndef RWL_ENGINES_WORLD_CACHE_H_
#define RWL_ENGINES_WORLD_CACHE_H_

#include <memory>
#include <string>
#include <utility>

#include "src/core/query_context.h"
#include "src/engines/engine.h"

namespace rwl::engines::internal {

enum class WorldCacheState { kSeenOnce, kRecorded, kTooBig };

// `List` must provide: `WorldCacheState state`, `bool valid` (set by the
// recording computation), and `size_t ByteSize() const` (for the context's
// aggregate cache budget).  `compute(List*)` runs the full computation,
// recording into the pointer when non-null; `replay(const List&)` answers
// from a recorded list.
template <typename List, typename Compute, typename Replay>
FiniteResult LazyRecordReplay(QueryContext& ctx, const std::string& key,
                              const Compute& compute, const Replay& replay) {
  auto worlds =
      std::static_pointer_cast<const List>(ctx.LookupBlob(key));
  if (worlds == nullptr) {
    if (!ctx.eager_world_recording()) {
      FiniteResult result = compute(static_cast<List*>(nullptr));
      // An exhausted point is incomplete; do not mark it (the memo layer
      // still caches the exhausted FiniteResult).
      if (!result.exhausted) ctx.StoreBlob(key, std::make_shared<List>());
      return result;
    }
    // Eager mode: fall through and record on the first computation.
  } else {
    switch (worlds->state) {
      case WorldCacheState::kRecorded:
        return replay(*worlds);
      case WorldCacheState::kTooBig:
        return compute(static_cast<List*>(nullptr));
      case WorldCacheState::kSeenOnce:
        break;
    }
  }
  auto recording = std::make_shared<List>();
  FiniteResult result = compute(recording.get());
  if (!result.exhausted) {
    recording->state = recording->valid ? WorldCacheState::kRecorded
                                        : WorldCacheState::kTooBig;
    size_t bytes = recording->ByteSize();
    ctx.StoreBlob(key, std::move(recording), bytes);
  }
  return result;
}

}  // namespace rwl::engines::internal

#endif  // RWL_ENGINES_WORLD_CACHE_H_
