// Symbolic engine: closed-form Pr_∞ via the paper's theorems.
//
// This engine does what the paper itself does when it computes answers: it
// pattern-matches the KB against the hypotheses of
//
//   Theorem 5.6   — direct inference (the single "right" reference class),
//   Theorem 5.16  — minimal reference class with irrelevant extra facts,
//   Theorem 5.23  — competing chain classes / Kyburg's strength rule,
//   Theorem 5.26  — essentially-disjoint competing classes (Dempster's rule),
//   Theorem 5.27  — vocabulary independence (product rule),
//
// and, when the (decidable, syntactic + class-algebra) side conditions hold,
// returns the interval the theorem guarantees.  It works for the full
// language, including non-unary predicates — exactly the cases where
// finite-N enumeration is hopeless — and returns "inapplicable" otherwise,
// mirroring the paper's own observation (Section 7.4) that the general
// problem is undecidable.
#ifndef RWL_ENGINES_SYMBOLIC_ENGINE_H_
#define RWL_ENGINES_SYMBOLIC_ENGINE_H_

#include <optional>
#include <string>
#include <vector>

#include "src/engines/engine.h"
#include "src/logic/formula.h"
#include "src/logic/vocabulary.h"

namespace rwl {
class QueryContext;
}  // namespace rwl

namespace rwl::engines {

// One statistical conjunct  ||target | refclass||_vars ∈ [lo, hi],
// assembled from one ≈ conjunct or a ⪰/⪯ pair over the same expression.
struct StatStatement {
  logic::FormulaPtr target;
  logic::FormulaPtr refclass;  // Formula::True() when unconditional
  std::vector<std::string> vars;
  double lo = 0.0;
  double hi = 1.0;
  int tolerance_lo = 1;
  int tolerance_hi = 1;
  // Indices into the KB conjunct list that this statement consumes.
  std::vector<size_t> source_conjuncts;

  bool is_point() const { return lo == hi; }
};

// A flattened view of the KB used by all matchers (and reused by the
// reference-class baseline in src/refclass).
struct KbAnalysis {
  std::vector<logic::FormulaPtr> conjuncts;
  std::vector<StatStatement> stats;
  // conjunct index → true when consumed by some StatStatement.
  std::vector<bool> is_stat_conjunct;
};

KbAnalysis AnalyzeKb(const logic::FormulaPtr& kb);

// Matches ∃!x φ(x) (the expansion produced by logic::ExistsUnique);
// returns the bound variable and φ.
struct ExistsUniqueParts {
  std::string var;
  logic::FormulaPtr body;
};
std::optional<ExistsUniqueParts> MatchExistsUnique(const logic::FormulaPtr& f);

struct SymbolicAnswer {
  enum class Status {
    kInterval,     // Pr_∞ ∈ [lo, hi]  (lo == hi: point value)
    kNonexistent,  // the limit provably does not exist (conflicting defaults)
    kInapplicable  // no theorem matched
  };
  Status status = Status::kInapplicable;
  double lo = 0.0;
  double hi = 1.0;
  std::string rule;
  std::string explanation;

  bool is_point() const {
    return status == Status::kInterval && lo == hi;
  }
};

class SymbolicEngine {
 public:
  struct Options {
    // Theorem 5.23 requires ¬(||ψ1(x)||_x ≈ 0) in the KB.  The paper notes
    // (footnote 15) that this follows by default via maximum entropy; with
    // this flag set the matcher assumes it instead of requiring the
    // conjunct.
    bool assume_reference_classes_nonempty = true;
    int max_recursion = 4;  // for the Theorem 5.27 product rule
  };

  SymbolicEngine() = default;
  explicit SymbolicEngine(const Options& options) : options_(options) {}

  SymbolicAnswer Infer(const logic::FormulaPtr& kb,
                       const logic::FormulaPtr& query) const;

  // Context-aware form (core/query_context.h): reuses the context's cached
  // KbAnalysis (the flattening is per-KB, not per-query) and memoizes the
  // answer under the query's node id.  Same answers as Infer above.
  SymbolicAnswer Infer(QueryContext& ctx,
                       const logic::FormulaPtr& query) const;

  // Planner hooks.  The theorem matchers cover the full language and
  // whether one applies is only decidable by running them, so capability
  // is "always worth trying" plus structural facts; predicted work is the
  // (tiny) matcher pass over the KB's statistical conjuncts.
  Capability Assess(const QueryContext& ctx,
                    const logic::FormulaPtr& query) const;
  CostEstimate EstimateCost(const QueryContext& ctx,
                            const logic::FormulaPtr& query) const;

  // Individual theorem matchers, exposed for tests.
  std::optional<SymbolicAnswer> TryDirectInference(
      const KbAnalysis& kb, const logic::FormulaPtr& query) const;
  std::optional<SymbolicAnswer> TryMinimalReferenceClass(
      const KbAnalysis& kb, const logic::FormulaPtr& query) const;
  std::optional<SymbolicAnswer> TryStrengthRule(
      const KbAnalysis& kb, const logic::FormulaPtr& query) const;
  std::optional<SymbolicAnswer> TryDempster(
      const KbAnalysis& kb, const logic::FormulaPtr& query) const;
  std::optional<SymbolicAnswer> TryIndependence(
      const KbAnalysis& kb, const logic::FormulaPtr& query, int depth) const;

 private:
  SymbolicAnswer InferAtDepth(const logic::FormulaPtr& kb,
                              const logic::FormulaPtr& query,
                              int depth) const;
  SymbolicAnswer InferAnalyzed(const KbAnalysis& analysis,
                               const logic::FormulaPtr& query,
                               int depth) const;

  Options options_;
};

}  // namespace rwl::engines

#endif  // RWL_ENGINES_SYMBOLIC_ENGINE_H_
