#include "src/engines/engine.h"

#include <cmath>

namespace rwl::engines {

LimitResult EstimateLimit(const FiniteEngine& engine,
                          const logic::Vocabulary& vocabulary,
                          const logic::FormulaPtr& kb,
                          const logic::FormulaPtr& query,
                          const semantics::ToleranceVector& base_tolerances,
                          const LimitOptions& options) {
  LimitResult result;

  // For each tolerance scale, take the largest supported N's value as the
  // N→∞ estimate; then check stability of those estimates as τ shrinks.
  std::vector<double> per_scale_estimates;
  bool engine_exhausted = false;
  bool last_scale_n_converged = false;
  for (double scale : options.tolerance_scales) {
    if (engine_exhausted) break;
    semantics::ToleranceVector tolerances = base_tolerances.Scaled(scale);
    std::optional<double> last_defined;
    double prev = -1.0;
    bool n_converged = false;
    for (int n : options.domain_sizes) {
      if (!engine.Supports(vocabulary, kb, query, n)) continue;
      FiniteResult fr = engine.DegreeAt(vocabulary, kb, query, n, tolerances);
      if (fr.exhausted) {
        // The engine hit its work budget: retrying at other tolerance
        // scales can only be slower.  Let the caller fall back.
        engine_exhausted = true;
        break;
      }
      SeriesPoint point;
      point.domain_size = n;
      point.tolerance_scale = scale;
      point.probability = fr.probability;
      point.well_defined = fr.well_defined;
      result.series.push_back(point);
      if (!fr.well_defined) continue;
      result.never_defined = false;
      if (last_defined.has_value() &&
          std::fabs(fr.probability - prev) < options.convergence_epsilon) {
        n_converged = true;
      }
      prev = fr.probability;
      last_defined = fr.probability;
    }
    if (last_defined.has_value()) {
      per_scale_estimates.push_back(*last_defined);
      last_scale_n_converged = n_converged;
    }
  }

  if (per_scale_estimates.empty()) return result;

  // Converged when the N-series stabilized at the final τ scale AND the
  // per-τ estimates agree (the two limits of Definition 4.3).
  double final_value = per_scale_estimates.back();
  bool tau_converged = last_scale_n_converged;
  if (per_scale_estimates.size() >= 2) {
    double prev = per_scale_estimates[per_scale_estimates.size() - 2];
    tau_converged = tau_converged &&
                    std::fabs(final_value - prev) <
                        options.convergence_epsilon;
  }
  result.value = final_value;
  result.converged = tau_converged;
  return result;
}

}  // namespace rwl::engines
