#include "src/engines/engine.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <optional>
#include <utility>

#include "src/core/query_context.h"
#include "src/semantics/compile.h"
#include "src/util/thread_pool.h"

namespace rwl::engines {
namespace {

// Shared sweep driver.  `ctx == nullptr` is the legacy, uncontexted form.
//
// The (scale, N) grid points are independent; when a worker pool is
// requested they are all precomputed concurrently and the convergence
// reduction below replays them in schedule order, which makes the result
// identical to the serial sweep (the reduction IS the serial algorithm,
// reading precomputed values).  In serial mode the points are computed
// lazily inside the reduction, exactly like the seed implementation —
// including not evaluating points after an engine-exhausted abort.
LimitResult EstimateLimitImpl(const FiniteEngine& engine, QueryContext* ctx,
                              const logic::Vocabulary& vocabulary,
                              const logic::FormulaPtr& kb,
                              const logic::FormulaPtr& query,
                              const semantics::ToleranceVector& base_tolerances,
                              const LimitOptions& options) {
  LimitResult result;

  const bool deadline_set = options.deadline.time_since_epoch().count() != 0;
  auto past_deadline = [&] {
    return deadline_set && std::chrono::steady_clock::now() > options.deadline;
  };

  const int num_scales = static_cast<int>(options.tolerance_scales.size());
  const int num_sizes = static_cast<int>(options.domain_sizes.size());

  std::vector<semantics::ToleranceVector> scaled;
  scaled.reserve(num_scales);
  for (double scale : options.tolerance_scales) {
    scaled.push_back(base_tolerances.Scaled(scale));
  }

  // Support is per-N (the engine interface takes no tolerances there).
  std::vector<char> supported(num_sizes);
  for (int d = 0; d < num_sizes; ++d) {
    int n = options.domain_sizes[d];
    supported[d] = ctx != nullptr ? engine.Supports(*ctx, query, n)
                                  : engine.Supports(vocabulary, kb, query, n);
  }

  std::vector<std::optional<FiniteResult>> grid(
      static_cast<size_t>(num_scales) * num_sizes);
  auto compute = [&](int s, int d) {
    int n = options.domain_sizes[d];
    return ctx != nullptr ? engine.DegreeAt(*ctx, query, n, scaled[s])
                          : engine.DegreeAt(vocabulary, kb, query, n,
                                            scaled[s]);
  };

  int threads = util::EffectiveThreads(options.num_threads,
                                       num_scales * num_sizes);
  if (threads > 1) {
    std::vector<std::pair<int, int>> work;
    for (int s = 0; s < num_scales; ++s) {
      for (int d = 0; d < num_sizes; ++d) {
        if (supported[d]) work.emplace_back(s, d);
      }
    }
    // Mirror the serial path's early abort: once any point reports the
    // engine exhausted, the reduction discards everything after it, so
    // workers stop starting new points (the reduction computes lazily any
    // skipped point it still needs).
    std::atomic<bool> abort{false};
    util::ParallelFor(threads, static_cast<int>(work.size()), [&](int i) {
      if (abort.load(std::memory_order_relaxed)) return;
      if (past_deadline()) {
        abort.store(true, std::memory_order_relaxed);
        return;
      }
      auto [s, d] = work[i];
      auto& slot = grid[static_cast<size_t>(s) * num_sizes + d];
      slot = compute(s, d);
      if (slot->exhausted) abort.store(true, std::memory_order_relaxed);
    });
  }
  auto result_at = [&](int s, int d) -> const FiniteResult* {
    auto& slot = grid[static_cast<size_t>(s) * num_sizes + d];
    if (!slot.has_value()) {
      // The deadline is checked before a point is computed, never inside
      // one: a sweep overshoots by at most one probe.
      if (past_deadline()) {
        result.deadline_hit = true;
        return nullptr;
      }
      slot = compute(s, d);
    }
    return &*slot;
  };

  // For each tolerance scale, take the largest supported N's value as the
  // N→∞ estimate; then check stability of those estimates as τ shrinks.
  std::vector<double> per_scale_estimates;
  bool engine_exhausted = false;
  bool last_scale_n_converged = false;
  for (int s = 0; s < num_scales; ++s) {
    if (engine_exhausted) break;
    std::optional<double> last_defined;
    double prev = -1.0;
    std::optional<double> prev_delta;
    bool n_converged = false;
    for (int d = 0; d < num_sizes; ++d) {
      if (!supported[d]) continue;
      const FiniteResult* computed = result_at(s, d);
      if (computed == nullptr) {
        // Deadline: stop evaluating; whatever has been accumulated so far
        // stands (the planner falls back like for an exhausted engine).
        engine_exhausted = true;
        break;
      }
      const FiniteResult& fr = *computed;
      if (fr.exhausted) {
        // The engine hit its work budget: retrying at other tolerance
        // scales can only be slower.  Let the caller fall back.
        engine_exhausted = true;
        result.exhausted = true;
        break;
      }
      SeriesPoint point;
      point.domain_size = options.domain_sizes[d];
      point.tolerance_scale = options.tolerance_scales[s];
      point.probability = fr.probability;
      point.well_defined = fr.well_defined;
      result.series.push_back(point);
      if (!fr.well_defined) continue;
      result.never_defined = false;
      std::optional<double> delta;
      if (last_defined.has_value()) {
        delta = std::fabs(fr.probability - prev);
        if (*delta < options.convergence_epsilon) n_converged = true;
      }
      prev = fr.probability;
      last_defined = fr.probability;
      // Rate-aware early exit: with two successive deltas contracting and
      // the geometric tail bound r·Δ/(1−r) within the convergence epsilon,
      // the remaining (largest, most expensive) N points cannot move the
      // estimate past the tolerance — skip them.
      if (options.rate_aware_early_exit && delta.has_value() &&
          prev_delta.has_value() && *delta < options.convergence_epsilon) {
        bool tail_converged = false;
        if (*delta == 0.0) {
          tail_converged = true;
        } else if (*delta < *prev_delta) {
          const double rate = *delta / *prev_delta;
          tail_converged = *delta * rate / (1.0 - rate) <
                           options.convergence_epsilon;
        }
        if (tail_converged) {
          n_converged = true;
          break;
        }
      }
      if (delta.has_value()) prev_delta = delta;
    }
    if (last_defined.has_value()) {
      per_scale_estimates.push_back(*last_defined);
      last_scale_n_converged = n_converged;
    }
  }

  if (per_scale_estimates.empty()) return result;

  // Converged when the N-series stabilized at the final τ scale AND the
  // per-τ estimates agree (the two limits of Definition 4.3).
  double final_value = per_scale_estimates.back();
  bool tau_converged = last_scale_n_converged;
  if (per_scale_estimates.size() >= 2) {
    double prev = per_scale_estimates[per_scale_estimates.size() - 2];
    tau_converged = tau_converged &&
                    std::fabs(final_value - prev) <
                        options.convergence_epsilon;
  }
  result.value = final_value;
  // A deadline-truncated schedule must not present its estimate with the
  // confidence of a completed sweep: the τ-stability check (the second
  // limit of Definition 4.3) may not have run.
  result.converged = tau_converged && !result.deadline_hit;
  return result;
}

}  // namespace

std::string ToString(const FiniteResult& result) {
  if (result.exhausted) return "exhausted";
  if (!result.well_defined) return "undefined";
  char buf[128];
  std::snprintf(buf, sizeof(buf), "Pr=%.12g (log_num=%.6g log_den=%.6g)",
                result.probability, result.log_numerator,
                result.log_denominator);
  return buf;
}

bool ResultsEquivalent(const FiniteResult& a, ResultClass class_a,
                       const FiniteResult& b, ResultClass class_b,
                       const ResultTolerance& tolerance, std::string* why) {
  auto fail = [&](const std::string& message) {
    if (why != nullptr) {
      *why = message + "  [" + ToString(a) + " vs " + ToString(b) + "]";
    }
    return false;
  };
  if (a.exhausted || b.exhausted) return true;

  const bool a_statistical = class_a == ResultClass::kStatistical;
  const bool b_statistical = class_b == ResultClass::kStatistical;
  if (a.well_defined != b.well_defined) {
    // A statistical engine reporting "undefined" only means its sampler
    // found no accepted worlds; the deterministic side may still know
    // worlds exist.  An estimator that DID accept worlds of a KB the
    // deterministic side proves unsatisfiable has evaluated some formula
    // differently — that is a contradiction, not noise.
    if (!a.well_defined && a_statistical) return true;
    if (!b.well_defined && b_statistical) return true;
    return fail("well-definedness disagrees");
  }
  if (!a.well_defined) return true;

  // Sampling-error allowance: z binomial standard deviations per
  // statistical side, using that side's accepted count (= e^{log #KB
  // worlds}) and the other side's probability as the success rate when it
  // is deterministic.
  double allowed = tolerance.deterministic_epsilon;
  auto statistical_allowance = [&](const FiniteResult& estimate,
                                   const FiniteResult& reference) {
    double accepted = std::exp(estimate.log_denominator);
    if (accepted < 1.0) accepted = 1.0;
    double p = reference.probability;
    double spread = std::sqrt(std::max(p * (1.0 - p), 0.25 / accepted) /
                              accepted);
    return tolerance.statistical_z * spread + tolerance.statistical_floor;
  };
  if (a_statistical) allowed += statistical_allowance(a, b);
  if (b_statistical) allowed += statistical_allowance(b, a);
  if (std::fabs(a.probability - b.probability) > allowed) {
    return fail("probabilities differ by " +
                std::to_string(std::fabs(a.probability - b.probability)) +
                " > allowed " + std::to_string(allowed));
  }
  return true;
}

namespace {

int ExprNestingDepth(const logic::ExprPtr& e);

int FormulaNestingDepth(const logic::FormulaPtr& f) {
  if (f == nullptr) return 0;
  using K = logic::Formula::Kind;
  switch (f->kind()) {
    case K::kTrue:
    case K::kFalse:
    case K::kAtom:
    case K::kEqual:
      return 1;
    case K::kNot:
    case K::kForAll:
    case K::kExists:
      return 1 + FormulaNestingDepth(f->body());
    case K::kAnd:
    case K::kOr:
    case K::kImplies:
    case K::kIff:
      return 1 + std::max(FormulaNestingDepth(f->left()),
                          FormulaNestingDepth(f->right()));
    case K::kCompare:
      return 1 + std::max(ExprNestingDepth(f->expr_left()),
                          ExprNestingDepth(f->expr_right()));
  }
  return 1;
}

int ExprNestingDepth(const logic::ExprPtr& e) {
  if (e == nullptr) return 0;
  using K = logic::Expr::Kind;
  switch (e->kind()) {
    case K::kConstant:
      return 1;
    case K::kProportion:
      return 1 + FormulaNestingDepth(e->body());
    case K::kConditional:
      return 1 + std::max(FormulaNestingDepth(e->body()),
                          FormulaNestingDepth(e->cond()));
    case K::kAdd:
    case K::kSub:
    case K::kMul:
      return 1 + std::max(ExprNestingDepth(e->lhs()),
                          ExprNestingDepth(e->rhs()));
  }
  return 1;
}

int ExprNodeCount(const logic::ExprPtr& e);

int FormulaNodeCount(const logic::FormulaPtr& f) {
  if (f == nullptr) return 0;
  using K = logic::Formula::Kind;
  switch (f->kind()) {
    case K::kTrue:
    case K::kFalse:
      return 1;
    case K::kAtom:
    case K::kEqual:
      return 1 + static_cast<int>(f->terms().size());
    case K::kNot:
    case K::kForAll:
    case K::kExists:
      return 1 + FormulaNodeCount(f->body());
    case K::kAnd:
    case K::kOr:
    case K::kImplies:
    case K::kIff:
      return 1 + FormulaNodeCount(f->left()) + FormulaNodeCount(f->right());
    case K::kCompare:
      return 1 + ExprNodeCount(f->expr_left()) +
             ExprNodeCount(f->expr_right());
  }
  return 1;
}

int ExprNodeCount(const logic::ExprPtr& e) {
  if (e == nullptr) return 0;
  using K = logic::Expr::Kind;
  switch (e->kind()) {
    case K::kConstant:
      return 1;
    case K::kProportion:
      return 1 + FormulaNodeCount(e->body());
    case K::kConditional:
      return 1 + FormulaNodeCount(e->body()) + FormulaNodeCount(e->cond());
    case K::kAdd:
    case K::kSub:
    case K::kMul:
      return 1 + ExprNodeCount(e->lhs()) + ExprNodeCount(e->rhs());
  }
  return 1;
}

}  // namespace

double ApproximateProgramLength(const QueryContext& ctx,
                                const logic::FormulaPtr& f) {
  auto compiled = ctx.CompiledIfCached(f);
  if (compiled != nullptr) {
    semantics::ProgramStats stats = semantics::StatsOf(*compiled);
    if (stats.ok) return static_cast<double>(stats.length);
  }
  // Programs average slightly over one instruction per AST node (loop
  // setup, comparisons); 1.5 keeps the estimate on the same scale.
  return 1.5 * std::max(FormulaNodeCount(f), 1);
}

Capability DescribeInstance(const logic::Vocabulary& vocabulary,
                            const logic::FormulaPtr& query) {
  Capability cap;
  for (const auto& p : vocabulary.predicates()) {
    cap.max_predicate_arity = std::max(cap.max_predicate_arity, p.arity);
  }
  cap.num_constants = static_cast<int>(vocabulary.Constants().size());
  if (vocabulary.IsUnaryRelational() && vocabulary.num_predicates() <= 30) {
    cap.num_atoms = 1 << vocabulary.num_predicates();
  }
  cap.query_depth = FormulaNestingDepth(query);
  return cap;
}

bool FiniteEngine::Supports(const QueryContext& ctx,
                            const logic::FormulaPtr& query,
                            int domain_size) const {
  return Supports(ctx.vocabulary(), ctx.kb(), query, domain_size);
}

Capability FiniteEngine::AssessCapability(const QueryContext& ctx,
                                          const logic::FormulaPtr& query,
                                          int domain_size) const {
  Capability cap = DescribeInstance(ctx.vocabulary(), query);
  cap.applicable = Supports(ctx, query, domain_size);
  cap.reason = cap.applicable
                   ? "supported at N=" + std::to_string(domain_size)
                   : "outside the engine's structural limits at N=" +
                         std::to_string(domain_size);
  return cap;
}

CostEstimate FiniteEngine::EstimateCost(const QueryContext& ctx,
                                        const logic::FormulaPtr& query,
                                        int domain_size) const {
  (void)ctx;
  (void)query;
  (void)domain_size;
  // Uninformative default: engines without a model rank after engines
  // with one at equal fidelity, never before.
  CostEstimate cost;
  cost.work = 1e9;
  cost.error = result_class() == ResultClass::kStatistical ? 0.05 : 0.0;
  cost.basis = "no engine-specific cost model";
  return cost;
}

FiniteResult FiniteEngine::DegreeAtInContext(
    QueryContext& ctx, const logic::FormulaPtr& query, int domain_size,
    const semantics::ToleranceVector& tolerances) const {
  return DegreeAt(ctx.vocabulary(), ctx.kb(), query, domain_size, tolerances);
}

FiniteResult FiniteEngine::DegreeAt(
    QueryContext& ctx, const logic::FormulaPtr& query, int domain_size,
    const semantics::ToleranceVector& tolerances) const {
  std::string key = name();
  key += '|';
  key += CacheSalt();
  key += '|';
  key += std::to_string(query == nullptr ? 0 : query->id());
  key += '|';
  key += std::to_string(domain_size);
  key += '|';
  key += tolerances.CacheKey();

  FiniteResult cached;
  if (ctx.LookupFinite(key, &cached)) return cached;
  FiniteResult result = DegreeAtInContext(ctx, query, domain_size, tolerances);
  ctx.StoreFinite(key, result);
  return result;
}

LimitResult EstimateLimit(const FiniteEngine& engine,
                          const logic::Vocabulary& vocabulary,
                          const logic::FormulaPtr& kb,
                          const logic::FormulaPtr& query,
                          const semantics::ToleranceVector& base_tolerances,
                          const LimitOptions& options) {
  return EstimateLimitImpl(engine, nullptr, vocabulary, kb, query,
                           base_tolerances, options);
}

LimitResult EstimateLimit(const FiniteEngine& engine, QueryContext& ctx,
                          const logic::FormulaPtr& query,
                          const semantics::ToleranceVector& base_tolerances,
                          const LimitOptions& options) {
  return EstimateLimitImpl(engine, &ctx, ctx.vocabulary(), ctx.kb(), query,
                           base_tolerances, options);
}

}  // namespace rwl::engines
