// Exact engine: brute-force enumeration of W_N(Φ).
//
// Enumerates every world over the vocabulary — all 2^(predicate cells) ×
// N^(function cells) interpretations — evaluates KB and KB ∧ φ in each with
// compiled bytecode programs (semantics/compile.h + vm.h), and returns the
// ratio of counts.  The enumeration is sharded over contiguous world-index
// ranges on a worker pool with deterministic index-order merging.  This is
// the definitional computation of Pr_N^τ (Section 4.2) with no semantic
// shortcuts, usable only for tiny vocabularies and domain sizes; it serves
// as the ground-truth oracle that the profile, maximum-entropy and symbolic
// engines are validated against.
//
// One shortcut preserves bit-identity: when KB and query are both
// aggregate-only (compile.h AnalyzeAggregate — they observe a world only
// through unary predicate cardinalities), the enumeration collapses to a
// counting loop over compositions of N into the 2^m predicate classes,
// weighting each by its multinomial.  That is polynomial in N, so such
// instances are supported at domain sizes far beyond the enumeration cap.
#ifndef RWL_ENGINES_EXACT_ENGINE_H_
#define RWL_ENGINES_EXACT_ENGINE_H_

#include <cstddef>
#include <memory>
#include <vector>

#include "src/engines/engine.h"
#include "src/logic/formula.h"
#include "src/logic/vocabulary.h"

namespace rwl::engines {

// Filter-patches one recorded exact world list (a type-erased context blob
// stored under an "exact.worlds|..." key) for a signature-preserving
// append mutation: each recorded world's cells are restored and run
// through the compiled conjunction of the appended formulas; survivors
// keep their recorded order, so replaying the patched list is
// bit-identical to a fresh odometer sweep under the new KB.  Returns the
// patched list with *bytes_out set to its ByteSize, or null when the blob
// is not a valid recorded list or the appended conjunction fails to
// compile — the caller then lets the point recompute lazily.
std::shared_ptr<const void> PatchExactWorlds(
    const std::shared_ptr<const void>& blob,
    const logic::Vocabulary& vocabulary,
    const std::vector<logic::FormulaPtr>& appended, size_t* bytes_out);

class ExactEngine : public FiniteEngine {
 public:
  // `max_log2_worlds` caps the enumeration: the engine refuses instances
  // with more than 2^max_log2_worlds worlds.  `num_threads` shards the
  // world odometer across a worker pool (0 = one per hardware thread);
  // shards cover contiguous index ranges and merge in index order, so
  // counts — and recorded world lists — are bit-identical at every thread
  // count.
  explicit ExactEngine(double max_log2_worlds = 26.0, int num_threads = 0)
      : max_log2_worlds_(max_log2_worlds), num_threads_(num_threads) {}

  std::string name() const override { return "exact"; }

  // Un-hide the context-aware overloads.
  using FiniteEngine::DegreeAt;
  using FiniteEngine::Supports;

  bool Supports(const logic::Vocabulary& vocabulary,
                const logic::FormulaPtr& kb, const logic::FormulaPtr& query,
                int domain_size) const override;

  FiniteResult DegreeAt(const logic::Vocabulary& vocabulary,
                        const logic::FormulaPtr& kb,
                        const logic::FormulaPtr& query, int domain_size,
                        const semantics::ToleranceVector& tolerances)
      const override;

  std::string CacheSalt() const override;

  // Planner cost model: world-odometer size 2^(predicate cells) ×
  // N^(function cells), times the compiled KB+query program length.
  // Aggregate-only instances instead report the composition count of the
  // counting loop — near-free, so min-cost planning prefers this engine.
  CostEstimate EstimateCost(const QueryContext& ctx,
                            const logic::FormulaPtr& query,
                            int domain_size) const override;

 protected:
  // Context path: the KB-satisfying worlds at one (N, ⃗τ) are
  // query-independent, so the first query records them (within a memory
  // cap) and later queries evaluate only against the recorded worlds
  // instead of enumerating all of W_N.
  FiniteResult DegreeAtInContext(QueryContext& ctx,
                                 const logic::FormulaPtr& query,
                                 int domain_size,
                                 const semantics::ToleranceVector& tolerances)
      const override;

 private:
  double max_log2_worlds_;
  int num_threads_;
};

}  // namespace rwl::engines

#endif  // RWL_ENGINES_EXACT_ENGINE_H_
