#include "src/engines/profile_engine.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "src/combinatorics/logmath.h"
#include "src/core/query_context.h"
#include "src/engines/world_cache.h"
#include "src/logic/classalg.h"
#include "src/logic/transform.h"
#include "src/semantics/compile.h"
#include "src/semantics/evaluator.h"

namespace rwl::engines {
namespace {

using logic::AtomSet;
using logic::ClassUniverse;
using logic::CompareOp;
using logic::Expr;
using logic::ExprPtr;
using logic::Formula;
using logic::FormulaPtr;

[[noreturn]] void Die(const std::string& message) {
  std::fprintf(stderr, "rwl profile engine error: %s\n", message.c_str());
  std::abort();
}

// ---------------------------------------------------------------------------
// Constant placements.
// ---------------------------------------------------------------------------

// A placement: constants grouped into blocks of coinciding denotations, with
// an atom per block.
struct Placement {
  std::vector<int> constant_block;  // index: position in constants list
  std::vector<int> block_atom;      // per block
  std::vector<int> blocks_in_atom;  // d_a, per atom
  double log_extra = 0.0;           // filled per-profile (falling factorials)
};

// All set partitions of {0..m-1} as restricted-growth strings.
void EnumeratePartitions(int m, std::vector<std::vector<int>>* out) {
  std::vector<int> rgs(m, 0);
  // Standard RGS enumeration.
  std::vector<int> max_prefix(m, 0);
  int i = 0;
  if (m == 0) {
    out->push_back({});
    return;
  }
  while (true) {
    if (i == m) {
      out->push_back(rgs);
      --i;
      while (i >= 0) {
        int limit = (i == 0) ? 0 : max_prefix[i - 1] + 1;
        if (rgs[i] < limit) {
          ++rgs[i];
          max_prefix[i] = std::max(i == 0 ? 0 : max_prefix[i - 1], rgs[i]);
          ++i;
          break;
        }
        --i;
      }
      if (i < 0) break;
      continue;
    }
    rgs[i] = 0;
    max_prefix[i] = i == 0 ? 0 : max_prefix[i - 1];
    ++i;
  }
}

std::vector<Placement> EnumeratePlacements(int num_constants, int num_atoms) {
  std::vector<Placement> placements;
  std::vector<std::vector<int>> partitions;
  EnumeratePartitions(num_constants, &partitions);
  for (const auto& rgs : partitions) {
    int num_blocks = 0;
    for (int b : rgs) num_blocks = std::max(num_blocks, b + 1);
    if (num_constants == 0) num_blocks = 0;
    // All atom assignments for the blocks.
    std::vector<int> atom(num_blocks, 0);
    while (true) {
      Placement p;
      p.constant_block = rgs;
      p.block_atom = atom;
      p.blocks_in_atom.assign(num_atoms, 0);
      for (int a : atom) ++p.blocks_in_atom[a];
      placements.push_back(p);
      int j = 0;
      for (; j < num_blocks; ++j) {
        if (++atom[j] < num_atoms) break;
        atom[j] = 0;
      }
      if (j == num_blocks) break;
    }
    if (num_blocks == 0) break;  // single empty placement already emitted
  }
  return placements;
}

// ---------------------------------------------------------------------------
// Symbolic evaluation over a profile.
// ---------------------------------------------------------------------------

// A bound element: its atom and a unique identity.  Identities 0..B-1 are
// the constant blocks; identities >= B are pinned anonymous elements.
struct Elem {
  int atom = 0;
  int id = 0;
};

class ProfileEvaluator {
 public:
  ProfileEvaluator(const logic::Vocabulary& vocabulary,
                   const std::vector<int64_t>& atom_counts,
                   const Placement* placement,
                   const std::map<std::string, int>& constant_index,
                   const semantics::ToleranceVector& tolerances)
      : vocabulary_(vocabulary),
        atom_counts_(atom_counts),
        placement_(placement),
        constant_index_(constant_index),
        tolerances_(tolerances) {
    int num_atoms = static_cast<int>(atom_counts.size());
    fresh_in_atom_.assign(num_atoms, 0);
    num_blocks_ = 0;
    if (placement_ != nullptr) {
      for (int b : placement_->constant_block) {
        num_blocks_ = std::max(num_blocks_, b + 1);
      }
    }
    next_fresh_id_ = num_blocks_;
  }

  bool Eval(const FormulaPtr& f) { return EvalFormula(f); }

 private:
  struct ExprValue {
    double value = 0.0;
    bool defined = true;
  };

  int64_t PoolSize(int atom) const {
    int64_t named = placement_ != nullptr ? placement_->blocks_in_atom[atom] : 0;
    return atom_counts_[atom] - named;
  }

  Elem ElemOfConstant(const std::string& name) const {
    if (placement_ == nullptr) {
      Die("constant '" + name + "' in a constant-free evaluation");
    }
    auto it = constant_index_.find(name);
    if (it == constant_index_.end()) Die("unknown constant " + name);
    int block = placement_->constant_block[it->second];
    return Elem{placement_->block_atom[block], block};
  }

  Elem ElemOfTerm(const logic::TermPtr& t) const {
    if (t->is_variable()) {
      auto it = env_.find(t->name());
      if (it == env_.end()) Die("unbound variable " + t->name());
      return it->second;
    }
    if (!t->is_constant()) {
      Die("non-constant function in unary profile evaluation");
    }
    return ElemOfConstant(t->name());
  }

  bool AtomHolds(int atom, const std::string& predicate) const {
    auto sym = vocabulary_.FindPredicate(predicate);
    if (!sym.has_value()) Die("unknown predicate " + predicate);
    return (atom >> sym->id) & 1;
  }

  // Enumerates candidate bindings for a variable.  The callback receives the
  // element and the number of concrete domain elements it represents; it
  // returns false to stop the enumeration early.
  template <typename Callback>
  void ForEachCandidate(const Callback& cb) {
    // Named blocks.
    if (placement_ != nullptr) {
      for (int b = 0; b < num_blocks_; ++b) {
        if (!cb(Elem{placement_->block_atom[b], b}, int64_t{1}, false)) return;
      }
    }
    // Pinned anonymous elements (currently bound fresh elements).
    for (const Elem& e : fresh_stack_) {
      if (!cb(e, int64_t{1}, false)) return;
    }
    // A fresh element from each nonempty anonymous pool.
    int num_atoms = static_cast<int>(atom_counts_.size());
    for (int a = 0; a < num_atoms; ++a) {
      int64_t remaining = PoolSize(a) - fresh_in_atom_[a];
      if (remaining > 0) {
        if (!cb(Elem{a, -1}, remaining, true)) return;
      }
    }
  }

  // Binds `var` to a candidate for the duration of `body`.
  template <typename Body>
  auto WithBinding(const std::string& var, const Elem& elem, bool is_fresh,
                   const Body& body) {
    Elem bound = elem;
    if (is_fresh) {
      bound.id = next_fresh_id_++;
      fresh_stack_.push_back(bound);
      ++fresh_in_atom_[bound.atom];
    }
    auto saved = env_.find(var) != env_.end()
                     ? std::optional<Elem>(env_[var])
                     : std::nullopt;
    env_[var] = bound;
    auto result = body();
    if (saved.has_value()) {
      env_[var] = *saved;
    } else {
      env_.erase(var);
    }
    if (is_fresh) {
      --fresh_in_atom_[bound.atom];
      fresh_stack_.pop_back();
      --next_fresh_id_;
    }
    return result;
  }

  bool EvalQuantifier(const FormulaPtr& f) {
    bool is_forall = f->kind() == Formula::Kind::kForAll;
    bool result = is_forall;
    ForEachCandidate([&](const Elem& e, int64_t /*ways*/, bool fresh) {
      bool holds = WithBinding(f->var(), e, fresh,
                               [&] { return EvalFormula(f->body()); });
      if (is_forall && !holds) {
        result = false;
        return false;
      }
      if (!is_forall && holds) {
        result = true;
        return false;
      }
      return true;
    });
    return result;
  }

  // Counts assignments of vars[idx..] satisfying cond (or all, when cond is
  // null), and those satisfying body ∧ cond.
  struct Counts {
    int64_t body = 0;
    int64_t cond = 0;
  };

  Counts CountTuples(const std::vector<std::string>& vars, size_t idx,
                     const FormulaPtr& body, const FormulaPtr& cond) {
    if (idx == vars.size()) {
      Counts c;
      bool cond_holds = cond == nullptr || EvalFormula(cond);
      if (!cond_holds) return c;
      c.cond = 1;
      if (EvalFormula(body)) c.body = 1;
      return c;
    }
    Counts total;
    ForEachCandidate([&](const Elem& e, int64_t ways, bool fresh) {
      Counts sub = WithBinding(vars[idx], e, fresh, [&] {
        return CountTuples(vars, idx + 1, body, cond);
      });
      total.body += ways * sub.body;
      total.cond += ways * sub.cond;
      return true;
    });
    return total;
  }

  ExprValue EvalExpr(const ExprPtr& e) {
    switch (e->kind()) {
      case Expr::Kind::kConstant:
        return {e->value(), true};
      case Expr::Kind::kProportion: {
        Counts c = CountTuples(e->vars(), 0, e->body(), nullptr);
        double total = 1.0;
        int64_t n = 0;
        for (int64_t cnt : atom_counts_) n += cnt;
        for (size_t i = 0; i < e->vars().size(); ++i) {
          total *= static_cast<double>(n);
        }
        return {static_cast<double>(c.body) / total, true};
      }
      case Expr::Kind::kConditional: {
        Counts c = CountTuples(e->vars(), 0, e->body(), e->cond());
        if (c.cond == 0) return {0.0, false};
        return {static_cast<double>(c.body) / static_cast<double>(c.cond),
                true};
      }
      case Expr::Kind::kAdd:
      case Expr::Kind::kSub:
      case Expr::Kind::kMul: {
        ExprValue lhs = EvalExpr(e->lhs());
        ExprValue rhs = EvalExpr(e->rhs());
        ExprValue out;
        out.defined = lhs.defined && rhs.defined;
        switch (e->kind()) {
          case Expr::Kind::kAdd:
            out.value = lhs.value + rhs.value;
            break;
          case Expr::Kind::kSub:
            out.value = lhs.value - rhs.value;
            break;
          default:
            out.value = lhs.value * rhs.value;
            break;
        }
        return out;
      }
    }
    Die("unreachable expr kind");
  }

  bool EvalFormula(const FormulaPtr& f) {
    switch (f->kind()) {
      case Formula::Kind::kTrue:
        return true;
      case Formula::Kind::kFalse:
        return false;
      case Formula::Kind::kAtom: {
        if (f->terms().size() != 1) {
          Die("non-unary atom in profile evaluation: " + f->predicate());
        }
        Elem e = ElemOfTerm(f->terms()[0]);
        return AtomHolds(e.atom, f->predicate());
      }
      case Formula::Kind::kEqual: {
        Elem a = ElemOfTerm(f->terms()[0]);
        Elem b = ElemOfTerm(f->terms()[1]);
        return a.id == b.id;
      }
      case Formula::Kind::kNot:
        return !EvalFormula(f->body());
      case Formula::Kind::kAnd:
        return EvalFormula(f->left()) && EvalFormula(f->right());
      case Formula::Kind::kOr:
        return EvalFormula(f->left()) || EvalFormula(f->right());
      case Formula::Kind::kImplies:
        return !EvalFormula(f->left()) || EvalFormula(f->right());
      case Formula::Kind::kIff:
        return EvalFormula(f->left()) == EvalFormula(f->right());
      case Formula::Kind::kForAll:
      case Formula::Kind::kExists:
        return EvalQuantifier(f);
      case Formula::Kind::kCompare: {
        ExprValue lhs = EvalExpr(f->expr_left());
        ExprValue rhs = EvalExpr(f->expr_right());
        if (!lhs.defined || !rhs.defined) return true;  // 0/0 convention
        double tau = tolerances_.Get(f->tolerance_index());
        return semantics::CompareValues(lhs.value, f->compare_op(), rhs.value,
                                        tau);
      }
    }
    Die("unreachable formula kind");
  }

  const logic::Vocabulary& vocabulary_;
  const std::vector<int64_t>& atom_counts_;
  const Placement* placement_;
  const std::map<std::string, int>& constant_index_;
  const semantics::ToleranceVector& tolerances_;

  std::map<std::string, Elem> env_;
  std::vector<Elem> fresh_stack_;
  std::vector<int> fresh_in_atom_;
  int num_blocks_ = 0;
  int next_fresh_id_ = 0;
};

// ---------------------------------------------------------------------------
// DFS pruning constraints.
// ---------------------------------------------------------------------------

// Conservative linear bound extracted from a proportion conjunct:
//   lo · Σ_{a∈cond} n_a  ≤  Σ_{a∈body} n_a  ≤  hi · Σ_{a∈cond} n_a
// where body ⊆ cond.  (For unconditional proportions cond is every atom.)
struct PruneConstraint {
  AtomSet body;
  AtomSet cond;
  double lo = 0.0;
  double hi = 1.0;
};

// Attempts to turn a KB conjunct into a pruning constraint over the universe.
std::optional<PruneConstraint> ExtractConstraint(
    const ClassUniverse& universe, const FormulaPtr& conjunct,
    const semantics::ToleranceVector& tolerances) {
  if (conjunct->kind() != Formula::Kind::kCompare) return std::nullopt;
  // Require: proportion-expression op constant  (or constant op proportion).
  ExprPtr prop = conjunct->expr_left();
  ExprPtr constant = conjunct->expr_right();
  CompareOp op = conjunct->compare_op();
  bool flipped = false;
  if (prop->kind() == Expr::Kind::kConstant) {
    std::swap(prop, constant);
    flipped = true;
  }
  if (constant->kind() != Expr::Kind::kConstant) return std::nullopt;
  if (prop->kind() != Expr::Kind::kProportion &&
      prop->kind() != Expr::Kind::kConditional) {
    return std::nullopt;
  }
  if (prop->vars().size() != 1) return std::nullopt;
  logic::TermPtr subject = logic::Term::Variable(prop->vars()[0]);
  auto body = CompileClass(universe, prop->body(), subject);
  if (!body) return std::nullopt;
  AtomSet cond = AtomSet::All(universe);
  if (prop->kind() == Expr::Kind::kConditional) {
    auto compiled = CompileClass(universe, prop->cond(), subject);
    if (!compiled) return std::nullopt;
    cond = *compiled;
  }

  double v = constant->value();
  double tau = logic::IsApproximate(op)
                   ? tolerances.Get(conjunct->tolerance_index())
                   : 0.0;
  PruneConstraint out;
  out.body = body->Intersect(cond);
  out.cond = cond;
  switch (op) {
    case CompareOp::kApproxEq:
    case CompareOp::kEq:
      out.lo = v - tau;
      out.hi = v + tau;
      break;
    case CompareOp::kApproxLeq:
    case CompareOp::kLeq:
      // prop ≤ v (+τ); flipped: v ≤ prop (+τ).
      if (!flipped) {
        out.lo = 0.0;
        out.hi = v + tau;
      } else {
        out.lo = v - tau;
        out.hi = 1.0;
      }
      break;
    case CompareOp::kApproxGeq:
    case CompareOp::kGeq:
      if (!flipped) {
        out.lo = v - tau;
        out.hi = 1.0;
      } else {
        out.lo = 0.0;
        out.hi = v + tau;
      }
      break;
  }
  out.lo = std::max(0.0, out.lo);
  out.hi = std::min(1.0, out.hi);
  return out;
}

// ---------------------------------------------------------------------------
// Cached world lists (context path).
// ---------------------------------------------------------------------------

// The satisfying worlds of one (N, ⃗τ) sweep point, grouped as the DFS
// emits them: a leaf is an atom-count vector that passed the constant-free
// KB, an entry is a (leaf, placement) pair that also passed the
// constant-dependent KB, carrying the world-count log-weight.  Entries are
// stored in DFS emission order so a replay accumulates the identical
// LogSumExp sequence.
struct ProfileWorldList {
  // Record-and-replay protocol state (see engines/world_cache.h).
  internal::WorldCacheState state = internal::WorldCacheState::kSeenOnce;
  // False: recording overflowed the size cap (maps to kTooBig).
  bool valid = false;
  std::vector<std::vector<int64_t>> leaf_counts;
  struct Entry {
    int32_t leaf = 0;
    int32_t placement = 0;
    double log_weight = 0.0;
  };
  std::vector<Entry> entries;
  std::vector<Placement> placements;
  // The ⃗τ the list was recorded at (part of the blob key, but carried here
  // too so PatchProfileWorlds can re-run the leaf evaluator without
  // parsing the key back).
  semantics::ToleranceVector tolerances;

  size_t ByteSize() const {
    size_t bytes = entries.size() * sizeof(Entry);
    for (const auto& counts : leaf_counts) {
      bytes += counts.size() * sizeof(int64_t);
    }
    for (const auto& p : placements) {
      bytes += (p.constant_block.size() + p.block_atom.size() +
                p.blocks_in_atom.size()) *
               sizeof(int);
    }
    return bytes;
  }
};

// Memory cap for one recorded sweep point (entries dominate).
constexpr size_t kMaxRecordedEntries = 1u << 20;
constexpr size_t kMaxRecordedLeaves = 1u << 19;

// The full Pr_N^τ computation (the seed's DegreeAt), with an optional
// recording sink: when `record` is non-null, every world that enters the
// denominator is appended.  Recording never changes the result.
FiniteResult ComputeSweepPoint(const ProfileEngine::Options& options,
                               const logic::Vocabulary& vocabulary,
                               const FormulaPtr& kb_free,
                               const FormulaPtr& kb_dep,
                               const FormulaPtr& query, int domain_size,
                               const semantics::ToleranceVector& tolerances,
                               ProfileWorldList* record) {
  const int num_atoms = 1 << vocabulary.num_predicates();
  const int64_t n_total = domain_size;

  // Predicate names in vocabulary id order define the atom bits.
  std::vector<std::string> predicate_names;
  for (const auto& p : vocabulary.predicates()) {
    predicate_names.push_back(p.name);
  }
  ClassUniverse universe(predicate_names);

  // Constants.
  std::map<std::string, int> constant_index;
  {
    int i = 0;
    for (const auto& c : vocabulary.Constants()) constant_index[c.name] = i++;
  }
  const int num_constants = static_cast<int>(constant_index.size());
  std::vector<Placement> placements =
      EnumeratePlacements(num_constants, num_atoms);

  // Pruning constraints (from constant-free conjuncts only) and taxonomy
  // zero-atoms.
  std::vector<PruneConstraint> constraints;
  logic::Taxonomy taxonomy(universe);
  for (const auto& conjunct : logic::Conjuncts(kb_free)) {
    if (taxonomy.Absorb(conjunct)) continue;
    auto c = ExtractConstraint(universe, conjunct, tolerances);
    if (c.has_value()) constraints.push_back(*c);
  }
  const AtomSet& allowed = taxonomy.allowed();

  // DFS over atom-count vectors.
  std::vector<int64_t> counts(num_atoms, 0);
  LogSumExp denominator;
  LogSumExp numerator;
  uint64_t leaves = 0;
  bool exhausted = false;
  bool record_overflow = false;

  // Partial sums per constraint: body and cond over assigned atoms.
  const int num_constraints = static_cast<int>(constraints.size());
  std::vector<int64_t> sum_body(num_constraints, 0);
  std::vector<int64_t> sum_cond(num_constraints, 0);

  // Safe feasibility bounds: given assigned partial sums and remaining
  // capacity, constraint j is provably violated when
  //   lo · cond_min > body_max   or   body_min > hi · cond_max.
  // The per-suffix structure (which open atoms lie in body/cond) depends
  // only on the atom index, so it is precomputed by a backward scan.
  struct SuffixInfo {
    bool any_open = false;       // some allowed atom at index ≥ a
    bool body_open = false;      // some allowed atom ≥ a lies in body
    bool cond_open = false;
    bool all_in_body = true;     // every allowed atom ≥ a lies in body
    bool all_in_cond = true;
  };
  // suffix[j][a] summarizes atoms a..num_atoms-1 for constraint j.
  std::vector<std::vector<SuffixInfo>> suffix(
      num_constraints, std::vector<SuffixInfo>(num_atoms + 1));
  for (int j = 0; j < num_constraints; ++j) {
    const PruneConstraint& c = constraints[j];
    for (int a = num_atoms - 1; a >= 0; --a) {
      SuffixInfo info = suffix[j][a + 1];
      if (allowed.Get(a)) {
        bool in_body = c.body.Get(a);
        bool in_cond = c.cond.Get(a);
        info.any_open = true;
        info.body_open = info.body_open || in_body;
        info.cond_open = info.cond_open || in_cond;
        info.all_in_body = info.all_in_body && in_body;
        info.all_in_cond = info.all_in_cond && in_cond;
      }
      suffix[j][a] = info;
    }
  }

  auto infeasible = [&](int next_atom, int64_t remaining) {
    for (int j = 0; j < num_constraints; ++j) {
      const PruneConstraint& c = constraints[j];
      const SuffixInfo& info = suffix[j][next_atom];
      int64_t body_max = sum_body[j] + (info.body_open ? remaining : 0);
      int64_t body_min =
          sum_body[j] +
          ((info.any_open && info.all_in_body) ? remaining : 0);
      int64_t cond_max = sum_cond[j] + (info.cond_open ? remaining : 0);
      int64_t cond_min =
          sum_cond[j] +
          ((info.any_open && info.all_in_cond) ? remaining : 0);
      if (c.lo * static_cast<double>(cond_min) >
          static_cast<double>(body_max) + 1e-9) {
        return true;
      }
      if (static_cast<double>(body_min) >
          c.hi * static_cast<double>(cond_max) + 1e-9) {
        return true;
      }
    }
    return false;
  };

  const int num_predicates = vocabulary.num_predicates();
  auto process_leaf = [&]() {
    ++leaves;
    if (leaves > options.max_leaves) {
      exhausted = true;
      return;
    }
    double log_multinomial = LogMultinomial(n_total, counts);
    if (log_multinomial == kNegInf) return;
    if (options.prior == Prior::kRandomPropensities) {
      // Marginal probability of a world under per-predicate uniform
      // propensities: Π_i c_i!(N-c_i)!/(N+1)!, constant across the worlds
      // of one profile (c_i depends only on ⃗n).
      for (int i = 0; i < num_predicates; ++i) {
        int64_t c_i = 0;
        for (int a = 0; a < num_atoms; ++a) {
          if ((a >> i) & 1) c_i += counts[a];
        }
        log_multinomial += LogFactorial(c_i) + LogFactorial(n_total - c_i) -
                           LogFactorial(n_total + 1);
      }
    }

    // Constant-free part: once per profile.
    {
      ProfileEvaluator eval(vocabulary, counts, nullptr, constant_index,
                            tolerances);
      if (!eval.Eval(kb_free)) return;
    }
    int32_t recorded_leaf = -1;
    for (size_t pi = 0; pi < placements.size(); ++pi) {
      const Placement& placement = placements[pi];
      // Block feasibility: enough elements in each atom.
      double log_falling = 0.0;
      bool feasible = true;
      for (int a = 0; a < num_atoms; ++a) {
        int d = placement.blocks_in_atom[a];
        if (d == 0) continue;
        if (counts[a] < d) {
          feasible = false;
          break;
        }
        log_falling += LogFallingFactorial(counts[a], d);
      }
      if (!feasible) continue;

      ProfileEvaluator eval(vocabulary, counts, &placement, constant_index,
                            tolerances);
      if (!eval.Eval(kb_dep)) continue;
      double log_weight = log_multinomial + log_falling;
      denominator.Add(log_weight);
      if (record != nullptr && !record_overflow) {
        if (recorded_leaf < 0) {
          if (record->leaf_counts.size() >= kMaxRecordedLeaves) {
            record_overflow = true;
          } else {
            recorded_leaf = static_cast<int32_t>(record->leaf_counts.size());
            record->leaf_counts.push_back(counts);
          }
        }
        if (!record_overflow) {
          if (record->entries.size() >= kMaxRecordedEntries) {
            record_overflow = true;
          } else {
            record->entries.push_back(ProfileWorldList::Entry{
                recorded_leaf, static_cast<int32_t>(pi), log_weight});
          }
        }
      }
      if (eval.Eval(query)) numerator.Add(log_weight);
    }
  };

  // Recursive DFS written iteratively would obscure the logic; recursion
  // depth equals num_atoms (≤ max_atoms), which is safe.
  std::function<void(int, int64_t)> dfs = [&](int atom, int64_t remaining) {
    if (exhausted) return;
    if (atom == num_atoms - 1) {
      // Last atom takes the remainder.
      if (!allowed.Get(atom) && remaining > 0) return;
      counts[atom] = remaining;
      for (int j = 0; j < num_constraints; ++j) {
        if (constraints[j].body.Get(atom)) sum_body[j] += remaining;
        if (constraints[j].cond.Get(atom)) sum_cond[j] += remaining;
      }
      bool ok = true;
      for (int j = 0; j < num_constraints && ok; ++j) {
        const PruneConstraint& c = constraints[j];
        double body = static_cast<double>(sum_body[j]);
        double cond = static_cast<double>(sum_cond[j]);
        if (c.lo * cond > body + 1e-9 || body > c.hi * cond + 1e-9) ok = false;
      }
      if (ok) process_leaf();
      for (int j = 0; j < num_constraints; ++j) {
        if (constraints[j].body.Get(atom)) sum_body[j] -= remaining;
        if (constraints[j].cond.Get(atom)) sum_cond[j] -= remaining;
      }
      counts[atom] = 0;
      return;
    }
    int64_t max_here = allowed.Get(atom) ? remaining : 0;
    for (int64_t value = 0; value <= max_here; ++value) {
      counts[atom] = value;
      for (int j = 0; j < num_constraints; ++j) {
        if (constraints[j].body.Get(atom)) sum_body[j] += value;
        if (constraints[j].cond.Get(atom)) sum_cond[j] += value;
      }
      if (!infeasible(atom + 1, remaining - value)) {
        dfs(atom + 1, remaining - value);
      }
      for (int j = 0; j < num_constraints; ++j) {
        if (constraints[j].body.Get(atom)) sum_body[j] -= value;
        if (constraints[j].cond.Get(atom)) sum_cond[j] -= value;
      }
      if (exhausted) break;
    }
    counts[atom] = 0;
  };

  if (num_atoms == 1) {
    counts[0] = n_total;
    if (allowed.Get(0) || n_total == 0) process_leaf();
  } else {
    dfs(0, n_total);
  }

  if (record != nullptr) {
    record->valid = !record_overflow && !exhausted;
    if (record->valid) {
      record->placements = std::move(placements);
      record->tolerances = tolerances;
    } else {
      record->leaf_counts.clear();
      record->entries.clear();
    }
  }

  FiniteResult result;
  if (exhausted) {
    result.exhausted = true;
    return result;
  }
  if (denominator.IsZero()) return result;
  result.well_defined = true;
  result.log_numerator = numerator.Value();
  result.log_denominator = denominator.Value();
  result.probability =
      numerator.IsZero()
          ? 0.0
          : std::exp(numerator.Value() - denominator.Value());
  return result;
}

// Replays a recorded world list for a new query: one evaluation per
// surviving world, log-weights accumulated in recorded (= DFS) order.
FiniteResult ReplayWorldList(const logic::Vocabulary& vocabulary,
                             const ProfileWorldList& worlds,
                             const FormulaPtr& query,
                             const semantics::ToleranceVector& tolerances) {
  std::map<std::string, int> constant_index;
  {
    int i = 0;
    for (const auto& c : vocabulary.Constants()) constant_index[c.name] = i++;
  }
  LogSumExp denominator;
  LogSumExp numerator;
  for (const auto& entry : worlds.entries) {
    denominator.Add(entry.log_weight);
    ProfileEvaluator eval(vocabulary, worlds.leaf_counts[entry.leaf],
                          &worlds.placements[entry.placement], constant_index,
                          tolerances);
    if (eval.Eval(query)) numerator.Add(entry.log_weight);
  }
  FiniteResult result;
  if (denominator.IsZero()) return result;
  result.well_defined = true;
  result.log_numerator = numerator.Value();
  result.log_denominator = denominator.Value();
  result.probability =
      numerator.IsZero()
          ? 0.0
          : std::exp(numerator.Value() - denominator.Value());
  return result;
}

}  // namespace

std::shared_ptr<const void> PatchProfileWorlds(
    const std::shared_ptr<const void>& blob,
    const logic::Vocabulary& vocabulary,
    const std::vector<logic::FormulaPtr>& appended, size_t* bytes_out) {
  auto worlds = std::static_pointer_cast<const ProfileWorldList>(blob);
  if (worlds == nullptr ||
      worlds->state != internal::WorldCacheState::kRecorded ||
      !worlds->valid) {
    return nullptr;
  }
  // Split the appended conjuncts the way ComputeSweepPoint splits the KB:
  // constant-free conjuncts gate a whole leaf (evaluated placement-free),
  // constant-dependent ones gate each (leaf, placement) entry.  The
  // evaluations are exactly the ones a fresh sweep of the new KB would
  // run, so survivors — in unchanged order, with unchanged log-weights —
  // replay bit-identically to a fresh recording.
  std::vector<FormulaPtr> appended_free;
  std::vector<FormulaPtr> appended_dep;
  for (const auto& conjunct : appended) {
    (logic::ConstantsOf(conjunct).empty() ? appended_free : appended_dep)
        .push_back(conjunct);
  }
  std::map<std::string, int> constant_index;
  {
    int i = 0;
    for (const auto& c : vocabulary.Constants()) constant_index[c.name] = i++;
  }
  auto patched = std::make_shared<ProfileWorldList>();
  patched->state = internal::WorldCacheState::kRecorded;
  patched->valid = true;
  patched->leaf_counts = worlds->leaf_counts;
  patched->placements = worlds->placements;
  patched->tolerances = worlds->tolerances;
  patched->entries.reserve(worlds->entries.size());
  // Per-leaf memo of the constant-free verdict (-1 unknown, else 0/1):
  // consecutive entries share leaves, and the fresh sweep, too, evaluates
  // the constant-free part once per leaf.
  std::vector<int8_t> leaf_pass(worlds->leaf_counts.size(), -1);
  for (const auto& entry : worlds->entries) {
    if (!appended_free.empty()) {
      int8_t& verdict = leaf_pass[entry.leaf];
      if (verdict < 0) {
        ProfileEvaluator eval(vocabulary, worlds->leaf_counts[entry.leaf],
                              nullptr, constant_index, worlds->tolerances);
        verdict = 1;
        for (const auto& conjunct : appended_free) {
          if (!eval.Eval(conjunct)) {
            verdict = 0;
            break;
          }
        }
      }
      if (verdict == 0) continue;
    }
    if (!appended_dep.empty()) {
      ProfileEvaluator eval(vocabulary, worlds->leaf_counts[entry.leaf],
                            &worlds->placements[entry.placement],
                            constant_index, worlds->tolerances);
      bool pass = true;
      for (const auto& conjunct : appended_dep) {
        if (!eval.Eval(conjunct)) {
          pass = false;
          break;
        }
      }
      if (!pass) continue;
    }
    patched->entries.push_back(entry);
  }
  if (bytes_out != nullptr) *bytes_out = patched->ByteSize();
  return patched;
}

bool ProfileEngine::Supports(const logic::Vocabulary& vocabulary,
                             const logic::FormulaPtr& /*kb*/,
                             const logic::FormulaPtr& /*query*/,
                             int domain_size) const {
  if (domain_size <= 0) return false;
  if (!vocabulary.IsUnaryRelational()) return false;
  int k = vocabulary.num_predicates();
  if (k > 30 || (1 << k) > options_.max_atoms) return false;
  if (static_cast<int>(vocabulary.Constants().size()) >
      options_.max_constants) {
    return false;
  }
  // Cost heuristic: the raw profile count C(N+A-1, A-1) bounds the DFS;
  // constraint pruning typically buys two to three orders of magnitude, so
  // refuse instances more than ~1000× over the leaf budget rather than
  // burn the budget discovering they are hopeless.
  double log_raw = LogBinomial(domain_size + (1 << k) - 1, (1 << k) - 1);
  double log_cap = std::log(static_cast<double>(options_.max_leaves)) +
                   std::log(1000.0);
  return log_raw <= log_cap;
}

FiniteResult ProfileEngine::DegreeAt(
    const logic::Vocabulary& vocabulary, const logic::FormulaPtr& kb,
    const logic::FormulaPtr& query, int domain_size,
    const semantics::ToleranceVector& tolerances) const {
  // Constant-free conjuncts evaluate once per profile, the rest once per
  // placement; the same SplitByConstants feeds QueryContext::kb_split.
  logic::ConstantSplit split = logic::SplitByConstants(kb);
  return ComputeSweepPoint(options_, vocabulary, split.constant_free,
                           split.constant_dependent, query, domain_size,
                           tolerances, nullptr);
}

CostEstimate ProfileEngine::EstimateCost(const QueryContext& ctx,
                                         const logic::FormulaPtr& query,
                                         int domain_size) const {
  CostEstimate cost;
  const logic::Vocabulary& vocabulary = ctx.vocabulary();
  const int k = std::min(vocabulary.num_predicates(), 30);
  const double atoms = std::exp2(static_cast<double>(k));
  const double log_raw = LogBinomial(
      domain_size + (1 << k) - 1, (1 << k) - 1);
  // The DFS aborts at the leaf budget, so predicted leaves are capped
  // there; constraint pruning typically lands well below the raw count,
  // making this a (useful) overestimate.
  const double leaves =
      std::min(std::exp(std::min(log_raw, 60.0 * 0.6931471805599453)),
               static_cast<double>(options_.max_leaves));
  const double num_constants =
      static_cast<double>(vocabulary.Constants().size());
  const double placements =
      std::min(std::pow(atoms, num_constants), 1e6);
  const double length = ApproximateProgramLength(ctx, ctx.kb()) +
                        ApproximateProgramLength(ctx, query);
  // Profile-leaf evaluation works over element classes, not N elements —
  // per-leaf cost scales with the program length alone.
  cost.work = leaves * std::max(placements, 1.0) * length * 0.25;
  cost.error = 0.0;  // exact at each (N, τ) point
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "%.3g profile leaves x %.0f placements x length %.0f",
                leaves, std::max(placements, 1.0), length);
  cost.basis = buf;
  return cost;
}

std::string ProfileEngine::CacheSalt() const {
  std::string salt = "leaves=" + std::to_string(options_.max_leaves);
  salt += ";atoms=" + std::to_string(options_.max_atoms);
  salt += ";consts=" + std::to_string(options_.max_constants);
  salt += ";prior=";
  salt += options_.prior == Prior::kUniformWorlds ? "worlds" : "propensities";
  return salt;
}

FiniteResult ProfileEngine::DegreeAtInContext(
    QueryContext& ctx, const logic::FormulaPtr& query, int domain_size,
    const semantics::ToleranceVector& tolerances) const {
  if (!ctx.caching_enabled()) {
    return DegreeAt(ctx.vocabulary(), ctx.kb(), query, domain_size,
                    tolerances);
  }
  const QueryContext::KbSplit& split = ctx.kb_split();
  std::string blob_key = "profile.worlds|" + CacheSalt() + "|" +
                         std::to_string(domain_size) + "|" +
                         tolerances.CacheKey();
  return internal::LazyRecordReplay<ProfileWorldList>(
      ctx, blob_key,
      [&](ProfileWorldList* record) {
        return ComputeSweepPoint(options_, ctx.vocabulary(),
                                 split.constant_free,
                                 split.constant_dependent, query,
                                 domain_size, tolerances, record);
      },
      [&](const ProfileWorldList& worlds) {
        return ReplayWorldList(ctx.vocabulary(), worlds, query, tolerances);
      });
}

}  // namespace rwl::engines
