// Engine interface: computing Pr_N^τ(φ | KB) and estimating the
// random-worlds limit Pr_∞ (Definition 4.3).
//
// A FiniteEngine computes the degree of belief at a *fixed* domain size N
// and tolerance vector ⃗τ.  EstimateLimit drives a FiniteEngine over a
// schedule of growing N and shrinking τ (lim_{τ→0} lim_{N→∞}, in that
// order: for each τ scale the N-limit is estimated first) and reports the
// common limit when the series converges.
#ifndef RWL_ENGINES_ENGINE_H_
#define RWL_ENGINES_ENGINE_H_

#include <chrono>
#include <optional>
#include <string>
#include <vector>

#include "src/logic/formula.h"
#include "src/logic/vocabulary.h"
#include "src/semantics/tolerance.h"

namespace rwl {
class QueryContext;
}  // namespace rwl

namespace rwl::engines {

// Pr_N^τ(φ | KB), plus diagnostics.
struct FiniteResult {
  // False when #worlds(KB) == 0 (degree of belief undefined at this N) or
  // when the engine gave up (see `exhausted`).
  bool well_defined = false;
  double probability = 0.0;
  // log #worlds(KB ∧ φ) and log #worlds(KB).
  double log_numerator = 0.0;
  double log_denominator = 0.0;
  // True when a work budget was hit before the computation finished; the
  // probability is then meaningless.
  bool exhausted = false;
};

// How a differential comparator must treat an engine's results.
// Deterministic engines compute the same definitional quantity and must
// agree to within numerical round-off; statistical estimators carry
// sampling error proportional to 1/sqrt(accepted), where the accepted
// count is recoverable as exp(log_denominator).
enum class ResultClass {
  kDeterministic,
  kStatistical,
};

// Human-readable one-liner for differential-test diagnostics.
std::string ToString(const FiniteResult& result);

// ---- Planner contract (core/planner.h) ----
//
// Every engine reports, per (KB, query) pair, whether it applies at all
// (Capability) and a prediction of how much work an answer would take and
// how accurate it would be (CostEstimate).  The planner scores candidate
// strategies from these instead of trying engines in a hard-coded order.

// Applicability of an engine on one (KB, query) pair, with the structural
// facts the decision was derived from.  Derived from the KB analyses cached
// in QueryContext where possible, so assessment is cheap enough to run per
// query.
struct Capability {
  bool applicable = false;
  // Why not (or under what caps), for --list-engines / EXPLAIN output.
  std::string reason;
  // Structural facts behind the decision.
  int max_predicate_arity = 0;   // over the context vocabulary
  int num_constants = 0;         // arity-0 functions in the vocabulary
  int num_atoms = 0;             // 2^k for the unary fragment; 0 when n/a
  int query_depth = 0;           // connective nesting depth of the query
};

// Predicted work and accuracy of running an engine on one (KB, query)
// pair.  `work` is in abstract units — roughly one compiled-program
// evaluation of one world — comparable across engines; `error` is the
// expected |Pr̂ - Pr| of the produced answer (0 for exact engines).
struct CostEstimate {
  double work = 0.0;
  double error = 0.0;
  // What the prediction was derived from (leaf counts, world-odometer
  // size, program length, acceptance-rate estimate, ...).
  std::string basis;
};

// Structural facts shared by every engine's capability assessment:
// vocabulary arity/constant/atom counts and the query's connective
// nesting depth (applicable/reason are left for the engine to fill).
Capability DescribeInstance(const logic::Vocabulary& vocabulary,
                            const logic::FormulaPtr& query);

// Per-world evaluation cost proxy for the planner's models: the compiled
// program's instruction count when the context already holds the program
// (semantics/compile.h via QueryContext::CompiledIfCached), otherwise a
// structural node count — planning must stay far cheaper than the
// cheapest engine, so cost models never trigger compilation themselves.
double ApproximateProgramLength(const QueryContext& ctx,
                                const logic::FormulaPtr& f);

// Tolerance spec for ResultsEquivalent.
struct ResultTolerance {
  // Allowed |Δprobability| between two deterministic results.
  double deterministic_epsilon = 1e-9;
  // Statistical results are allowed z standard deviations of binomial
  // sampling error (computed from the deterministic side's probability
  // when available), plus the floor below.
  double statistical_z = 6.0;
  double statistical_floor = 5e-3;
};

// Tolerance-aware equivalence of two Pr_N^τ results computed by different
// engines on the SAME (KB, query, N, ⃗τ).  Exhausted results compare as
// equivalent to anything (no information).  Well-definedness must agree —
// except that a statistical engine may fail to accept samples on a
// satisfiable KB (a sampling drought, not a bug); the converse (samples
// accepted from a KB a deterministic engine proves unsatisfiable) is a
// genuine contradiction.  On mismatch returns false and describes the
// failure in *why (may be null).
bool ResultsEquivalent(const FiniteResult& a, ResultClass class_a,
                       const FiniteResult& b, ResultClass class_b,
                       const ResultTolerance& tolerance, std::string* why);

class FiniteEngine {
 public:
  virtual ~FiniteEngine() = default;

  virtual std::string name() const = 0;

  // True when this engine can evaluate this (KB, query) pair at domain size
  // N within its structural limits (vocabulary fragment, cost caps).
  virtual bool Supports(const logic::Vocabulary& vocabulary,
                        const logic::FormulaPtr& kb,
                        const logic::FormulaPtr& query, int domain_size) const = 0;

  virtual FiniteResult DegreeAt(const logic::Vocabulary& vocabulary,
                                const logic::FormulaPtr& kb,
                                const logic::FormulaPtr& query,
                                int domain_size,
                                const semantics::ToleranceVector& tolerances)
      const = 0;

  // ---- Context-aware entry points (core/query_context.h) ----
  //
  // DegreeAt(ctx, ...) memoizes the result in the context under an exact
  // (engine, options, query id, N, ⃗τ) key and lets engine subclasses share
  // KB-level work across queries via DegreeAtInContext.  With caching
  // disabled on the context, answers are bit-identical to the cached path
  // (the caches only store what the uncached path computes, in the same
  // order).
  FiniteResult DegreeAt(QueryContext& ctx, const logic::FormulaPtr& query,
                        int domain_size,
                        const semantics::ToleranceVector& tolerances) const;
  bool Supports(const QueryContext& ctx, const logic::FormulaPtr& query,
                int domain_size) const;

  // Extra key material for engines whose options change results (priors,
  // sample counts, budgets, ...).
  virtual std::string CacheSalt() const { return ""; }

  // Comparison hook for differential testing (see ResultsEquivalent):
  // engines whose results carry sampling error override to kStatistical.
  virtual ResultClass result_class() const {
    return ResultClass::kDeterministic;
  }

  // ---- Planner hooks ----
  //
  // Applicability and predicted cost of one DegreeAt probe at `domain_size`
  // (sweep strategies sum probes over their schedule).  The defaults derive
  // applicability from Supports and an uninformative cost; the concrete
  // engines override with predictions from the context's cached KB
  // analyses (profile leaf counts, world-odometer size, compiled-program
  // length, acceptance-rate estimates).
  virtual Capability AssessCapability(const QueryContext& ctx,
                                      const logic::FormulaPtr& query,
                                      int domain_size) const;
  virtual CostEstimate EstimateCost(const QueryContext& ctx,
                                    const logic::FormulaPtr& query,
                                    int domain_size) const;

 protected:
  // Engine-specific context-aware computation (no memo layer).  The default
  // delegates to the vocabulary/kb form above.
  virtual FiniteResult DegreeAtInContext(
      QueryContext& ctx, const logic::FormulaPtr& query, int domain_size,
      const semantics::ToleranceVector& tolerances) const;
};

// One evaluated point of the limit sweep.
struct SeriesPoint {
  int domain_size = 0;
  double tolerance_scale = 1.0;
  double probability = 0.0;
  bool well_defined = false;
};

struct LimitOptions {
  // Domain sizes per tolerance scale, increasing.
  std::vector<int> domain_sizes = {8, 16, 24, 32, 48, 64};
  // Multiplicative scales applied to the base tolerance vector, decreasing.
  std::vector<double> tolerance_scales = {1.0, 0.5, 0.25};
  // |last - previous| below this counts as converged.
  double convergence_epsilon = 5e-3;
  // Rate-aware early exit for the N-sweep (explicit-rate analyses of
  // Halpern-type iterations; flag-guarded, off by default).  When two
  // successive defined points contract geometrically — |Δ_k| ≤ |Δ_{k-1}|
  // with the extrapolated geometric tail Σ_j |Δ_k| r^j (r = Δ_k/Δ_{k-1})
  // inside convergence_epsilon — the remaining larger-N points of the
  // scale are skipped and the scale counts as N-converged.  Saves the most
  // expensive (largest-N) evaluations when the series has visibly settled.
  // The savings apply to the serial sweep (num_threads == 1, the default);
  // with a worker pool the grid is precomputed eagerly, so the exit only
  // shortens the reported series, not the work.
  bool rate_aware_early_exit = false;
  // Worker-pool size for evaluating the (N, τ-scale) grid: the points are
  // independent, so they are computed concurrently and the convergence
  // reduction replays them in schedule order (the result is identical to
  // the serial sweep, point for point).  1 = serial; 0 = one worker per
  // hardware thread.
  int num_threads = 1;
  // Per-query deadline (epoch time_point{} = none).  Checked between grid
  // points, never inside one, so a sweep overshoots the deadline by at
  // most one DegreeAt probe; points past the deadline are not evaluated
  // and the sweep reports deadline_hit.  Deadline-limited results are
  // inherently wall-clock-dependent — the planner treats them like an
  // exhausted engine and falls back.
  std::chrono::steady_clock::time_point deadline{};
};

struct LimitResult {
  // The estimated Pr_∞, when the sweep stabilized.
  std::optional<double> value;
  bool converged = false;
  // True when Pr_N^τ was undefined at every evaluated point (KB not
  // eventually consistent as far as the sweep can see).
  bool never_defined = true;
  // True when the sweep stopped early because the engine hit its work
  // budget (FiniteResult::exhausted) — the planner's cue to fall back.
  bool exhausted = false;
  // True when LimitOptions::deadline cut the sweep short.
  bool deadline_hit = false;
  std::vector<SeriesPoint> series;
};

LimitResult EstimateLimit(const FiniteEngine& engine,
                          const logic::Vocabulary& vocabulary,
                          const logic::FormulaPtr& kb,
                          const logic::FormulaPtr& query,
                          const semantics::ToleranceVector& base_tolerances,
                          const LimitOptions& options);

// Context-aware sweep: shares the context's caches across points and
// queries, and evaluates the grid on a worker pool when
// options.num_threads != 1.  Point-for-point identical to the serial,
// uncontexted overload above.
LimitResult EstimateLimit(const FiniteEngine& engine, QueryContext& ctx,
                          const logic::FormulaPtr& query,
                          const semantics::ToleranceVector& base_tolerances,
                          const LimitOptions& options);

}  // namespace rwl::engines

#endif  // RWL_ENGINES_ENGINE_H_
