#include "src/engines/montecarlo_engine.h"

#include <cmath>
#include <random>
#include <string>

#include "src/combinatorics/logmath.h"
#include "src/semantics/evaluator.h"
#include "src/semantics/world.h"

namespace rwl::engines {

bool MonteCarloEngine::Supports(const logic::Vocabulary& vocabulary,
                                const logic::FormulaPtr& /*kb*/,
                                const logic::FormulaPtr& /*query*/,
                                int domain_size) const {
  if (domain_size <= 0) return false;
  semantics::World probe(&vocabulary, domain_size);
  return probe.TotalPredicateCells() + probe.TotalFunctionCells() <=
         options_.max_cells;
}

FiniteResult MonteCarloEngine::DegreeAt(
    const logic::Vocabulary& vocabulary, const logic::FormulaPtr& kb,
    const logic::FormulaPtr& query, int domain_size,
    const semantics::ToleranceVector& tolerances) const {
  std::mt19937_64 rng(options_.seed);
  std::uniform_int_distribution<int> element(0, domain_size - 1);

  semantics::World world(&vocabulary, domain_size);
  uint64_t accepted = 0;
  uint64_t satisfying = 0;

  for (uint64_t s = 0; s < options_.num_samples; ++s) {
    // Resample every cell uniformly: 64 predicate cells per draw.
    for (int p = 0; p < vocabulary.num_predicates(); ++p) {
      auto& table = world.predicate_table(p);
      uint64_t bits = 0;
      int have = 0;
      for (auto& cell : table) {
        if (have == 0) {
          bits = rng();
          have = 64;
        }
        cell = bits & 1;
        bits >>= 1;
        --have;
      }
    }
    for (int f = 0; f < vocabulary.num_functions(); ++f) {
      for (auto& cell : world.function_table(f)) {
        cell = element(rng);
      }
    }
    if (!semantics::Evaluate(kb, world, tolerances)) continue;
    ++accepted;
    if (semantics::Evaluate(query, world, tolerances)) ++satisfying;
  }

  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    stats_.sampled = options_.num_samples;
    stats_.accepted = accepted;
  }

  FiniteResult result;
  if (accepted < options_.min_accepted) return result;
  result.well_defined = true;
  result.probability =
      static_cast<double>(satisfying) / static_cast<double>(accepted);
  result.log_numerator =
      satisfying > 0 ? std::log(static_cast<double>(satisfying)) : kNegInf;
  result.log_denominator = std::log(static_cast<double>(accepted));
  return result;
}

std::string MonteCarloEngine::CacheSalt() const {
  return "samples=" + std::to_string(options_.num_samples) +
         ";min=" + std::to_string(options_.min_accepted) +
         ";seed=" + std::to_string(options_.seed) +
         ";cells=" + std::to_string(options_.max_cells);
}

}  // namespace rwl::engines
