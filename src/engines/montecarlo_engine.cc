#include "src/engines/montecarlo_engine.h"

#include <cmath>
#include <cstdio>
#include <memory>
#include <random>
#include <string>
#include <vector>

#include "src/combinatorics/logmath.h"
#include "src/core/query_context.h"
#include "src/engines/symbolic_engine.h"
#include "src/semantics/compile.h"
#include "src/semantics/vm.h"
#include "src/semantics/world.h"
#include "src/util/thread_pool.h"

namespace rwl::engines {
namespace {

// The sample stream is split into a FIXED number of shards regardless of
// the worker-pool width; each shard derives its own RNG from (seed, shard)
// and the per-shard counts merge by addition, so estimates are bit-identical
// across --threads settings (and to a single-threaded run).
constexpr int kSampleShards = 32;

uint64_t SplitMix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

struct ShardCounts {
  uint64_t accepted = 0;
  uint64_t satisfying = 0;
};

void SampleShard(const logic::Vocabulary& vocabulary,
                 const semantics::Program& kb_program,
                 const semantics::Program& query_program, int domain_size,
                 const semantics::ToleranceVector& tolerances, uint64_t seed,
                 int shard, uint64_t num_samples, ShardCounts* counts) {
  std::mt19937_64 rng(SplitMix64(seed + static_cast<uint64_t>(shard)));
  std::uniform_int_distribution<int> element(0, domain_size - 1);

  semantics::World world(&vocabulary, domain_size);
  semantics::EvalFrame kb_frame;
  semantics::EvalFrame query_frame;
  kb_frame.Prepare(kb_program, tolerances);
  query_frame.Prepare(query_program, tolerances);

  const int unary_words = world.unary_words();
  const uint64_t tail_mask = world.unary_tail_mask();

  for (uint64_t s = 0; s < num_samples; ++s) {
    // Resample every cell uniformly: 64 predicate cells per draw, LSB
    // first, leftover bits of a table's last draw discarded.  For packed
    // unary columns that is exactly one masked draw per word, so the
    // stream of worlds is bit-identical to the legacy byte-table fill.
    for (int p = 0; p < vocabulary.num_predicates(); ++p) {
      if (world.predicate_arity(p) == 1) {
        uint64_t* column = world.unary_column(p);
        for (int i = 0; i < unary_words; ++i) {
          column[i] = rng() & (i == unary_words - 1 ? tail_mask : ~uint64_t{0});
        }
        continue;
      }
      auto& table = world.predicate_table(p);
      uint64_t bits = 0;
      int have = 0;
      for (auto& cell : table) {
        if (have == 0) {
          bits = rng();
          have = 64;
        }
        cell = bits & 1;
        bits >>= 1;
        --have;
      }
    }
    for (int f = 0; f < vocabulary.num_functions(); ++f) {
      for (auto& cell : world.function_table(f)) {
        cell = element(rng);
      }
    }
    if (!semantics::RunProgram(kb_program, world, &kb_frame)) continue;
    ++counts->accepted;
    if (semantics::RunProgram(query_program, world, &query_frame)) {
      ++counts->satisfying;
    }
  }
}

}  // namespace

bool MonteCarloEngine::Supports(const logic::Vocabulary& vocabulary,
                                const logic::FormulaPtr& /*kb*/,
                                const logic::FormulaPtr& /*query*/,
                                int domain_size) const {
  if (domain_size <= 0) return false;
  semantics::World probe(&vocabulary, domain_size);
  return probe.TotalPredicateCells() + probe.TotalFunctionCells() <=
         options_.max_cells;
}

FiniteResult MonteCarloEngine::Sample(
    const logic::Vocabulary& vocabulary,
    const semantics::CompiledFormula& kb,
    const semantics::CompiledFormula& query, int domain_size,
    const semantics::ToleranceVector& tolerances) const {
  if (!kb.ok() || !query.ok()) {
    // Compile failure (user-input error): the engine gives up instead of
    // the process aborting inside the evaluator.
    FiniteResult result;
    result.exhausted = true;
    return result;
  }

  const int shards =
      static_cast<int>(std::min<uint64_t>(kSampleShards,
                                          std::max<uint64_t>(
                                              options_.num_samples, 1)));
  std::vector<ShardCounts> counts(shards);
  const uint64_t base = options_.num_samples / shards;
  const uint64_t remainder = options_.num_samples % shards;
  util::ParallelFor(
      util::EffectiveThreads(options_.num_threads, shards), shards,
      [&](int s) {
        const uint64_t shard_samples =
            base + (static_cast<uint64_t>(s) < remainder ? 1 : 0);
        SampleShard(vocabulary, *kb.program, *query.program, domain_size,
                    tolerances, options_.seed, s, shard_samples, &counts[s]);
      });

  uint64_t accepted = 0;
  uint64_t satisfying = 0;
  for (const ShardCounts& c : counts) {
    accepted += c.accepted;
    satisfying += c.satisfying;
  }

  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    stats_.sampled = options_.num_samples;
    stats_.accepted = accepted;
  }

  FiniteResult result;
  if (accepted < options_.min_accepted) return result;
  result.well_defined = true;
  result.probability =
      static_cast<double>(satisfying) / static_cast<double>(accepted);
  result.log_numerator =
      satisfying > 0 ? std::log(static_cast<double>(satisfying)) : kNegInf;
  result.log_denominator = std::log(static_cast<double>(accepted));
  return result;
}

FiniteResult MonteCarloEngine::DegreeAt(
    const logic::Vocabulary& vocabulary, const logic::FormulaPtr& kb,
    const logic::FormulaPtr& query, int domain_size,
    const semantics::ToleranceVector& tolerances) const {
  return Sample(vocabulary, semantics::CompileFormula(kb, vocabulary),
                semantics::CompileFormula(query, vocabulary), domain_size,
                tolerances);
}

FiniteResult MonteCarloEngine::DegreeAtInContext(
    QueryContext& ctx, const logic::FormulaPtr& query, int domain_size,
    const semantics::ToleranceVector& tolerances) const {
  FiniteResult result = Sample(ctx.vocabulary(), *ctx.Compiled(ctx.kb()),
                               *ctx.Compiled(query), domain_size, tolerances);
  // Feed the observed acceptance rate back to the planner's cost model
  // (advisory only: it sharpens later cost predictions in this context,
  // never the results themselves).
  Stats stats = last_stats();
  if (stats.sampled > 0) {
    ctx.StoreBlob("planner.mc.acceptance|" + CacheSalt(),
                  std::make_shared<const double>(
                      static_cast<double>(stats.accepted) /
                      static_cast<double>(stats.sampled)),
                  sizeof(double));
  }
  return result;
}

CostEstimate MonteCarloEngine::EstimateCost(const QueryContext& ctx,
                                            const logic::FormulaPtr& query,
                                            int domain_size) const {
  (void)query;
  CostEstimate cost;
  semantics::World probe(&ctx.vocabulary(), domain_size);
  const double cells = static_cast<double>(probe.TotalPredicateCells() +
                                           probe.TotalFunctionCells());
  const double samples = static_cast<double>(options_.num_samples);
  // Each sample fills every cell, then evaluates the KB (and, on
  // acceptance, the query); cell filling dominates at realistic N.
  cost.work = samples * std::max(cells * 0.1, 1.0);

  // Acceptance-rate estimate: prefer the rate observed earlier in this
  // context; otherwise a prior from the KB's statistical conjuncts — each
  // ≈-constraint of width w keeps roughly a w-fraction of uniform worlds
  // (binomial concentration makes tight defaults expensive to hit).
  double acceptance = 0.0;
  std::string acceptance_basis;
  auto observed = std::static_pointer_cast<const double>(
      ctx.LookupBlob("planner.mc.acceptance|" + CacheSalt()));
  if (observed != nullptr) {
    acceptance = *observed;
    acceptance_basis = "observed acceptance";
  } else {
    acceptance = 1.0;
    for (const StatStatement& stat : ctx.kb_analysis().stats) {
      double width = std::max(stat.hi - stat.lo, 0.05);
      acceptance *= std::min(width + 0.1, 1.0);
    }
    acceptance_basis = "prior acceptance from KB constraint widths";
  }
  acceptance = std::max(acceptance, 1e-6);
  const double accepted = std::max(samples * acceptance, 1.0);
  cost.error = 0.5 / std::sqrt(accepted);
  char buf[160];
  std::snprintf(buf, sizeof(buf), "%.3g samples x %.0f cells; %s %.3g",
                samples, cells, acceptance_basis.c_str(), acceptance);
  cost.basis = buf;
  return cost;
}

std::string MonteCarloEngine::CacheSalt() const {
  // num_threads is deliberately absent: the fixed shard→seed derivation
  // makes estimates bit-identical at every worker-pool width.
  return "samples=" + std::to_string(options_.num_samples) +
         ";min=" + std::to_string(options_.min_accepted) +
         ";seed=" + std::to_string(options_.seed) +
         ";cells=" + std::to_string(options_.max_cells);
}

}  // namespace rwl::engines
