// Maximum-entropy engine: the N → ∞ limit for unary KBs (Section 6).
//
// The random-worlds distribution over atom-proportion vectors concentrates
// (at rate e^{N·H}) on the maximum-entropy point ⃗p* of the constraint space
// S(KB).  Degrees of belief therefore follow from ⃗p* directly:
//
//   Pr_∞(φ(c) | KB)  =  S_{φ∩ψ}(⃗p*) / S_ψ(⃗p*)
//
// where ψ is the conjunction of the KB's class facts about c, and
//
//   Pr_∞(θ | KB) ∈ {0, 1}
//
// for constant-free proportion assertions θ according to whether θ holds at
// ⃗p*.  The τ → 0 limit is taken by re-solving on a decreasing tolerance
// schedule and checking stability.
#ifndef RWL_ENGINES_MAXENT_ENGINE_H_
#define RWL_ENGINES_MAXENT_ENGINE_H_

#include <optional>
#include <string>
#include <vector>

#include "src/engines/engine.h"
#include "src/logic/formula.h"
#include "src/logic/vocabulary.h"
#include "src/semantics/tolerance.h"

namespace rwl {
class QueryContext;
}  // namespace rwl

namespace rwl::engines {

class MaxEntEngine {
 public:
  struct Result {
    bool supported = false;   // KB/query outside the unary fragment
    bool feasible = false;    // S(KB) empty at this tolerance
    double value = 0.0;       // the degree of belief
    std::vector<double> atom_probabilities;  // ⃗p* (diagnostics)
    std::string note;
  };

  struct LimitResultME {
    bool supported = false;
    bool converged = false;
    double value = 0.0;
    std::vector<double> per_scale_values;
    std::string note;
  };

  // Degree of belief with the tolerances fixed at ⃗τ.
  Result InferAt(const logic::Vocabulary& vocabulary,
                 const logic::FormulaPtr& kb, const logic::FormulaPtr& query,
                 const semantics::ToleranceVector& tolerances) const;

  // lim_{τ→0}: solve on a schedule of scaled tolerance vectors.
  LimitResultME InferLimit(const logic::Vocabulary& vocabulary,
                           const logic::FormulaPtr& kb,
                           const logic::FormulaPtr& query,
                           const semantics::ToleranceVector& base_tolerances,
                           const std::vector<double>& scales = {1.0, 0.3,
                                                                0.1}) const;

  // Context-aware forms (core/query_context.h): the KB extraction and the
  // entropy solve depend only on (KB, ⃗τ), so they are cached in the
  // context and shared across every query of a batch; only the cheap
  // query-conditioning part runs per query.  Bit-identical to the forms
  // above (the solver is deterministic).
  Result InferAt(QueryContext& ctx, const logic::FormulaPtr& query,
                 const semantics::ToleranceVector& tolerances) const;
  LimitResultME InferLimit(QueryContext& ctx, const logic::FormulaPtr& query,
                           const semantics::ToleranceVector& base_tolerances,
                           const std::vector<double>& scales = {1.0, 0.3,
                                                                0.1}) const;

  // The maximum-entropy point itself (for tests and the concentration
  // bench); nullopt when the KB is unsupported or infeasible.
  std::optional<std::vector<double>> MaxEntPoint(
      const logic::Vocabulary& vocabulary, const logic::FormulaPtr& kb,
      const semantics::ToleranceVector& tolerances) const;

  // Planner hooks.  Applicability is the unary fragment (the linear-
  // fragment check happens inside the solve); predicted work is the
  // entropy optimization over 2^k atom proportions per tolerance scale.
  Capability Assess(const QueryContext& ctx,
                    const logic::FormulaPtr& query) const;
  CostEstimate EstimateCost(const QueryContext& ctx,
                            const logic::FormulaPtr& query) const;
};

}  // namespace rwl::engines

#endif  // RWL_ENGINES_MAXENT_ENGINE_H_
