#include "src/engines/exact_engine.h"

#include <cmath>

#include "src/combinatorics/logmath.h"
#include "src/semantics/evaluator.h"
#include "src/semantics/world.h"

namespace rwl::engines {
namespace {

double Log2WorldCount(const logic::Vocabulary& vocabulary, int domain_size) {
  double log2_count = 0.0;
  for (const auto& p : vocabulary.predicates()) {
    log2_count += std::pow(static_cast<double>(domain_size), p.arity);
  }
  for (const auto& f : vocabulary.functions()) {
    log2_count += std::pow(static_cast<double>(domain_size), f.arity) *
                  std::log2(static_cast<double>(domain_size));
  }
  return log2_count;
}

}  // namespace

bool ExactEngine::Supports(const logic::Vocabulary& vocabulary,
                           const logic::FormulaPtr& /*kb*/,
                           const logic::FormulaPtr& /*query*/,
                           int domain_size) const {
  if (domain_size <= 0) return false;
  return Log2WorldCount(vocabulary, domain_size) <= max_log2_worlds_;
}

FiniteResult ExactEngine::DegreeAt(
    const logic::Vocabulary& vocabulary, const logic::FormulaPtr& kb,
    const logic::FormulaPtr& query, int domain_size,
    const semantics::ToleranceVector& tolerances) const {
  semantics::World world(&vocabulary, domain_size);

  int64_t kb_count = 0;
  int64_t both_count = 0;

  // Odometer enumeration over all predicate cells (base 2) and all function
  // cells (base N).
  const int num_predicates = vocabulary.num_predicates();
  const int num_functions = vocabulary.num_functions();

  auto evaluate_current = [&]() {
    if (!semantics::Evaluate(kb, world, tolerances)) return;
    ++kb_count;
    if (semantics::Evaluate(query, world, tolerances)) ++both_count;
  };

  // Recursive advance: returns false when the odometer wraps around.
  auto advance = [&]() -> bool {
    for (int p = 0; p < num_predicates; ++p) {
      auto& table = world.predicate_table(p);
      for (auto& cell : table) {
        if (cell == 0) {
          cell = 1;
          return true;
        }
        cell = 0;
      }
    }
    for (int f = 0; f < num_functions; ++f) {
      auto& table = world.function_table(f);
      for (auto& cell : table) {
        if (cell + 1 < domain_size) {
          ++cell;
          return true;
        }
        cell = 0;
      }
    }
    return false;
  };

  do {
    evaluate_current();
  } while (advance());

  FiniteResult result;
  if (kb_count == 0) return result;
  result.well_defined = true;
  result.probability =
      static_cast<double>(both_count) / static_cast<double>(kb_count);
  result.log_numerator = both_count > 0
                             ? std::log(static_cast<double>(both_count))
                             : kNegInf;
  result.log_denominator = std::log(static_cast<double>(kb_count));
  return result;
}

}  // namespace rwl::engines
