#include "src/engines/exact_engine.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <string>

#include "src/combinatorics/logmath.h"
#include "src/core/query_context.h"
#include "src/engines/world_cache.h"
#include "src/semantics/evaluator.h"
#include "src/semantics/world.h"

namespace rwl::engines {
namespace {

double Log2WorldCount(const logic::Vocabulary& vocabulary, int domain_size) {
  double log2_count = 0.0;
  for (const auto& p : vocabulary.predicates()) {
    log2_count += std::pow(static_cast<double>(domain_size), p.arity);
  }
  for (const auto& f : vocabulary.functions()) {
    log2_count += std::pow(static_cast<double>(domain_size), f.arity) *
                  std::log2(static_cast<double>(domain_size));
  }
  return log2_count;
}

// The KB-satisfying worlds of one (N, ⃗τ) point, flattened cell-by-cell in
// enumeration order.  Replay restores each world and evaluates only the
// query; the counts (and hence the probability) are identical to a full
// enumeration.
struct ExactWorldList {
  // Record-and-replay protocol state (see engines/world_cache.h).
  internal::WorldCacheState state = internal::WorldCacheState::kSeenOnce;
  bool valid = false;  // recording outcome (maps to kRecorded / kTooBig)
  int64_t pred_stride = 0;
  int64_t func_stride = 0;
  int64_t kb_count = 0;
  std::vector<uint8_t> pred_cells;  // kb_count × pred_stride
  std::vector<int> func_cells;      // kb_count × func_stride

  size_t ByteSize() const {
    return pred_cells.size() * sizeof(uint8_t) +
           func_cells.size() * sizeof(int);
  }
};

// Memory cap for one recorded point (~64 MiB of cells).
constexpr int64_t kMaxRecordedBytes = 64ll << 20;

FiniteResult ComputeExact(const logic::Vocabulary& vocabulary,
                          const logic::FormulaPtr& kb,
                          const logic::FormulaPtr& query, int domain_size,
                          const semantics::ToleranceVector& tolerances,
                          ExactWorldList* record) {
  semantics::World world(&vocabulary, domain_size);

  int64_t kb_count = 0;
  int64_t both_count = 0;

  const int num_predicates = vocabulary.num_predicates();
  const int num_functions = vocabulary.num_functions();

  bool record_overflow = false;
  int64_t recorded_bytes = 0;
  if (record != nullptr) {
    record->pred_stride = world.TotalPredicateCells();
    record->func_stride = world.TotalFunctionCells();
  }

  auto evaluate_current = [&]() {
    if (!semantics::Evaluate(kb, world, tolerances)) return;
    ++kb_count;
    if (record != nullptr && !record_overflow) {
      recorded_bytes += record->pred_stride +
                        record->func_stride * static_cast<int64_t>(sizeof(int));
      if (recorded_bytes > kMaxRecordedBytes) {
        record_overflow = true;
      } else {
        for (int p = 0; p < num_predicates; ++p) {
          const auto& table = world.predicate_table(p);
          record->pred_cells.insert(record->pred_cells.end(), table.begin(),
                                    table.end());
        }
        for (int f = 0; f < num_functions; ++f) {
          const auto& table = world.function_table(f);
          record->func_cells.insert(record->func_cells.end(), table.begin(),
                                    table.end());
        }
        ++record->kb_count;
      }
    }
    if (semantics::Evaluate(query, world, tolerances)) ++both_count;
  };

  // Odometer enumeration over all predicate cells (base 2) and all function
  // cells (base N); returns false when the odometer wraps around.
  auto advance = [&]() -> bool {
    for (int p = 0; p < num_predicates; ++p) {
      auto& table = world.predicate_table(p);
      for (auto& cell : table) {
        if (cell == 0) {
          cell = 1;
          return true;
        }
        cell = 0;
      }
    }
    for (int f = 0; f < num_functions; ++f) {
      auto& table = world.function_table(f);
      for (auto& cell : table) {
        if (cell + 1 < domain_size) {
          ++cell;
          return true;
        }
        cell = 0;
      }
    }
    return false;
  };

  do {
    evaluate_current();
  } while (advance());

  if (record != nullptr) {
    record->valid = !record_overflow;
    if (!record->valid) {
      record->pred_cells.clear();
      record->func_cells.clear();
      record->kb_count = 0;
    }
  }

  FiniteResult result;
  if (kb_count == 0) return result;
  result.well_defined = true;
  result.probability =
      static_cast<double>(both_count) / static_cast<double>(kb_count);
  result.log_numerator = both_count > 0
                             ? std::log(static_cast<double>(both_count))
                             : kNegInf;
  result.log_denominator = std::log(static_cast<double>(kb_count));
  return result;
}

FiniteResult ReplayExact(const logic::Vocabulary& vocabulary,
                         const ExactWorldList& worlds,
                         const logic::FormulaPtr& query, int domain_size,
                         const semantics::ToleranceVector& tolerances) {
  semantics::World world(&vocabulary, domain_size);
  const int num_predicates = vocabulary.num_predicates();
  const int num_functions = vocabulary.num_functions();

  int64_t both_count = 0;
  int64_t pred_offset = 0;
  int64_t func_offset = 0;
  for (int64_t w = 0; w < worlds.kb_count; ++w) {
    for (int p = 0; p < num_predicates; ++p) {
      auto& table = world.predicate_table(p);
      std::copy(worlds.pred_cells.begin() + pred_offset,
                worlds.pred_cells.begin() + pred_offset +
                    static_cast<int64_t>(table.size()),
                table.begin());
      pred_offset += static_cast<int64_t>(table.size());
    }
    for (int f = 0; f < num_functions; ++f) {
      auto& table = world.function_table(f);
      std::copy(worlds.func_cells.begin() + func_offset,
                worlds.func_cells.begin() + func_offset +
                    static_cast<int64_t>(table.size()),
                table.begin());
      func_offset += static_cast<int64_t>(table.size());
    }
    if (semantics::Evaluate(query, world, tolerances)) ++both_count;
  }

  FiniteResult result;
  if (worlds.kb_count == 0) return result;
  result.well_defined = true;
  result.probability = static_cast<double>(both_count) /
                       static_cast<double>(worlds.kb_count);
  result.log_numerator = both_count > 0
                             ? std::log(static_cast<double>(both_count))
                             : kNegInf;
  result.log_denominator =
      std::log(static_cast<double>(worlds.kb_count));
  return result;
}

}  // namespace

bool ExactEngine::Supports(const logic::Vocabulary& vocabulary,
                           const logic::FormulaPtr& /*kb*/,
                           const logic::FormulaPtr& /*query*/,
                           int domain_size) const {
  if (domain_size <= 0) return false;
  return Log2WorldCount(vocabulary, domain_size) <= max_log2_worlds_;
}

FiniteResult ExactEngine::DegreeAt(
    const logic::Vocabulary& vocabulary, const logic::FormulaPtr& kb,
    const logic::FormulaPtr& query, int domain_size,
    const semantics::ToleranceVector& tolerances) const {
  return ComputeExact(vocabulary, kb, query, domain_size, tolerances,
                      nullptr);
}

std::string ExactEngine::CacheSalt() const {
  return "log2worlds=" + std::to_string(max_log2_worlds_);
}

FiniteResult ExactEngine::DegreeAtInContext(
    QueryContext& ctx, const logic::FormulaPtr& query, int domain_size,
    const semantics::ToleranceVector& tolerances) const {
  if (!ctx.caching_enabled()) {
    return DegreeAt(ctx.vocabulary(), ctx.kb(), query, domain_size,
                    tolerances);
  }
  std::string blob_key = "exact.worlds|" + std::to_string(domain_size) + "|" +
                         tolerances.CacheKey();
  return internal::LazyRecordReplay<ExactWorldList>(
      ctx, blob_key,
      [&](ExactWorldList* record) {
        return ComputeExact(ctx.vocabulary(), ctx.kb(), query, domain_size,
                            tolerances, record);
      },
      [&](const ExactWorldList& worlds) {
        return ReplayExact(ctx.vocabulary(), worlds, query, domain_size,
                           tolerances);
      });
}

}  // namespace rwl::engines
