#include "src/engines/exact_engine.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/combinatorics/logmath.h"
#include "src/core/query_context.h"
#include "src/engines/world_cache.h"
#include "src/semantics/compile.h"
#include "src/semantics/vm.h"
#include "src/semantics/world.h"
#include "src/util/thread_pool.h"

namespace rwl::engines {
namespace {

double Log2WorldCount(const logic::Vocabulary& vocabulary, int domain_size) {
  double log2_count = 0.0;
  for (const auto& p : vocabulary.predicates()) {
    log2_count += std::pow(static_cast<double>(domain_size), p.arity);
  }
  for (const auto& f : vocabulary.functions()) {
    log2_count += std::pow(static_cast<double>(domain_size), f.arity) *
                  std::log2(static_cast<double>(domain_size));
  }
  return log2_count;
}

// The KB-satisfying worlds of one (N, ⃗τ) point, flattened cell-by-cell in
// enumeration order.  Replay restores each world and evaluates only the
// query; the counts (and hence the probability) are identical to a full
// enumeration.
struct ExactWorldList {
  // Record-and-replay protocol state (see engines/world_cache.h).
  internal::WorldCacheState state = internal::WorldCacheState::kSeenOnce;
  bool valid = false;  // recording outcome (maps to kRecorded / kTooBig)
  int64_t pred_stride = 0;
  int64_t func_stride = 0;
  int64_t kb_count = 0;
  std::vector<uint8_t> pred_cells;  // kb_count × pred_stride
  std::vector<int> func_cells;      // kb_count × func_stride
  // The (N, ⃗τ) the list was recorded at (part of the blob key, but carried
  // here too so PatchExactWorlds can re-run worlds without parsing keys).
  int domain_size = 0;
  semantics::ToleranceVector tolerances;

  size_t ByteSize() const {
    return pred_cells.size() * sizeof(uint8_t) +
           func_cells.size() * sizeof(int);
  }
};

// Memory cap for one recorded point (~64 MiB of cells).
constexpr int64_t kMaxRecordedBytes = 64ll << 20;

// Exact number of worlds 2^(predicate cells) × N^(function cells), or -1
// when it does not fit in an int64 (such instances never pass Supports,
// but DegreeAt is callable directly).
int64_t ExactWorldCountOrNegative(const semantics::World& probe,
                                  int domain_size) {
  constexpr int64_t kLimit = int64_t{1} << 62;
  int64_t total = 1;
  for (int64_t i = 0; i < probe.TotalPredicateCells(); ++i) {
    if (total > kLimit / 2) return -1;
    total *= 2;
  }
  for (int64_t i = 0; i < probe.TotalFunctionCells(); ++i) {
    if (domain_size > 1 && total > kLimit / domain_size) return -1;
    total *= domain_size;
  }
  return total;
}

// Positions the world's cells at world index `index` of the enumeration
// order used by AdvanceWorld: predicate cells are the low binary digits
// (table 0, cell 0 first), function cells the high base-N digits.
void SeekWorld(semantics::World* world, int64_t index) {
  const auto& vocabulary = world->vocabulary();
  for (int p = 0; p < vocabulary.num_predicates(); ++p) {
    for (auto& cell : world->predicate_table(p)) {
      cell = static_cast<uint8_t>(index & 1);
      index >>= 1;
    }
  }
  const int n = world->domain_size();
  for (int f = 0; f < vocabulary.num_functions(); ++f) {
    for (auto& cell : world->function_table(f)) {
      cell = static_cast<int>(index % n);
      index /= n;
    }
  }
}

// Odometer increment over all predicate cells (base 2) and all function
// cells (base N); returns false when the odometer wraps around.
bool AdvanceWorld(semantics::World* world) {
  const auto& vocabulary = world->vocabulary();
  const int n = world->domain_size();
  for (int p = 0; p < vocabulary.num_predicates(); ++p) {
    auto& table = world->predicate_table(p);
    for (auto& cell : table) {
      if (cell == 0) {
        cell = 1;
        return true;
      }
      cell = 0;
    }
  }
  for (int f = 0; f < vocabulary.num_functions(); ++f) {
    auto& table = world->function_table(f);
    for (auto& cell : table) {
      if (cell + 1 < n) {
        ++cell;
        return true;
      }
      cell = 0;
    }
  }
  return false;
}

// One shard's contribution to the enumeration: counts, and (when recording)
// the KB worlds of its contiguous index range in enumeration order.
struct ShardTally {
  int64_t kb_count = 0;
  int64_t both_count = 0;
  bool record_overflow = false;
  int64_t recorded_bytes = 0;
  int64_t kb_recorded = 0;
  std::vector<uint8_t> pred_cells;
  std::vector<int> func_cells;
};

void RunShard(const logic::Vocabulary& vocabulary,
              const semantics::Program& kb_program,
              const semantics::Program& query_program, int domain_size,
              const semantics::ToleranceVector& tolerances, int64_t start,
              int64_t count, bool recording,
              std::atomic<int64_t>* global_recorded_bytes,
              ShardTally* tally) {
  semantics::World world(&vocabulary, domain_size);
  SeekWorld(&world, start);
  semantics::EvalFrame kb_frame;
  semantics::EvalFrame query_frame;
  kb_frame.Prepare(kb_program, tolerances);
  query_frame.Prepare(query_program, tolerances);

  const int num_predicates = vocabulary.num_predicates();
  const int num_functions = vocabulary.num_functions();
  const int64_t stride_bytes =
      world.TotalPredicateCells() +
      world.TotalFunctionCells() * static_cast<int64_t>(sizeof(int));

  // `count < 0` means "until the odometer wraps" (instances whose world
  // count overflows int64; they never pass Supports, but DegreeAt is
  // callable directly and must keep the serial semantics).
  for (int64_t w = 0; count < 0 || w < count; ++w) {
    if (semantics::RunProgram(kb_program, world, &kb_frame)) {
      ++tally->kb_count;
      if (recording && !tally->record_overflow) {
        tally->recorded_bytes += stride_bytes;
        // The byte cap is shared across shards (an atomic running total),
        // so the parallel recording path never holds more than ~the cap in
        // memory before the merge decides validity.  The verdict stays
        // deterministic: it depends only on whether the total bytes of ALL
        // KB worlds exceed the cap, not on shard interleaving.
        if (global_recorded_bytes->fetch_add(
                stride_bytes, std::memory_order_relaxed) +
                stride_bytes >
            kMaxRecordedBytes) {
          tally->record_overflow = true;
        } else {
          for (int p = 0; p < num_predicates; ++p) {
            const auto& table = world.predicate_table(p);
            tally->pred_cells.insert(tally->pred_cells.end(), table.begin(),
                                     table.end());
          }
          for (int f = 0; f < num_functions; ++f) {
            const auto& table = world.function_table(f);
            tally->func_cells.insert(tally->func_cells.end(), table.begin(),
                                     table.end());
          }
          ++tally->kb_recorded;
        }
      }
      if (semantics::RunProgram(query_program, world, &query_frame)) {
        ++tally->both_count;
      }
    }
    if (!AdvanceWorld(&world) && count < 0) break;
  }
}

FiniteResult ResultFromCounts(int64_t kb_count, int64_t both_count) {
  FiniteResult result;
  if (kb_count == 0) return result;
  result.well_defined = true;
  result.probability =
      static_cast<double>(both_count) / static_cast<double>(kb_count);
  result.log_numerator = both_count > 0
                             ? std::log(static_cast<double>(both_count))
                             : kNegInf;
  result.log_denominator = std::log(static_cast<double>(kb_count));
  return result;
}

// An instance the compiler rejected (unbound variable, unknown symbol —
// user-input errors that used to abort inside the tree-walker).  Reported
// as "engine gave up", which lets the pipeline fall through to other
// engines instead of killing the process.
FiniteResult GaveUp() {
  FiniteResult result;
  result.exhausted = true;
  return result;
}

FiniteResult ComputeExact(const logic::Vocabulary& vocabulary,
                          const semantics::CompiledFormula& kb,
                          const semantics::CompiledFormula& query,
                          int domain_size,
                          const semantics::ToleranceVector& tolerances,
                          ExactWorldList* record, int num_threads) {
  if (!kb.ok() || !query.ok()) return GaveUp();

  semantics::World probe(&vocabulary, domain_size);
  const int64_t total = ExactWorldCountOrNegative(probe, domain_size);
  if (record != nullptr) {
    record->pred_stride = probe.TotalPredicateCells();
    record->func_stride = probe.TotalFunctionCells();
    record->domain_size = domain_size;
    record->tolerances = tolerances;
  }

  // Shard the contiguous world-index ranges across the pool; the merge
  // below reads the shards in index order, so counts and recorded cells
  // are identical to the serial enumeration at every thread count.
  int shards = 1;
  if (total > 0) {
    const int64_t max_shards = std::min<int64_t>(total, 64);
    shards = util::EffectiveThreads(num_threads,
                                    static_cast<int>(max_shards));
  }
  std::atomic<int64_t> global_recorded_bytes{0};
  if (shards <= 1 || total < 2048) {
    ShardTally tally;
    RunShard(vocabulary, *kb.program, *query.program, domain_size, tolerances,
             0, total, record != nullptr, &global_recorded_bytes, &tally);
    if (record != nullptr) {
      record->valid = !tally.record_overflow;
      if (record->valid) {
        record->pred_cells = std::move(tally.pred_cells);
        record->func_cells = std::move(tally.func_cells);
        record->kb_count = tally.kb_recorded;
      }
    }
    return ResultFromCounts(tally.kb_count, tally.both_count);
  }

  std::vector<ShardTally> tallies(shards);
  util::ParallelFor(shards, shards, [&](int s) {
    const int64_t start = total * s / shards;
    const int64_t end = total * (s + 1) / shards;
    RunShard(vocabulary, *kb.program, *query.program, domain_size, tolerances,
             start, end - start, record != nullptr, &global_recorded_bytes,
             &tallies[s]);
  });

  int64_t kb_count = 0;
  int64_t both_count = 0;
  int64_t recorded_bytes = 0;
  bool record_overflow = false;
  for (const ShardTally& tally : tallies) {
    kb_count += tally.kb_count;
    both_count += tally.both_count;
    recorded_bytes += tally.recorded_bytes;
    record_overflow = record_overflow || tally.record_overflow;
  }
  if (record != nullptr) {
    record->valid = !record_overflow && recorded_bytes <= kMaxRecordedBytes;
    if (record->valid) {
      for (ShardTally& tally : tallies) {
        record->pred_cells.insert(record->pred_cells.end(),
                                  tally.pred_cells.begin(),
                                  tally.pred_cells.end());
        record->func_cells.insert(record->func_cells.end(),
                                  tally.func_cells.begin(),
                                  tally.func_cells.end());
        record->kb_count += tally.kb_recorded;
      }
    }
  }
  return ResultFromCounts(kb_count, both_count);
}

FiniteResult ReplayExact(const logic::Vocabulary& vocabulary,
                         const ExactWorldList& worlds,
                         const semantics::CompiledFormula& query,
                         int domain_size,
                         const semantics::ToleranceVector& tolerances) {
  if (!query.ok()) return GaveUp();
  semantics::World world(&vocabulary, domain_size);
  semantics::EvalFrame query_frame;
  query_frame.Prepare(*query.program, tolerances);
  const int num_predicates = vocabulary.num_predicates();
  const int num_functions = vocabulary.num_functions();

  int64_t both_count = 0;
  int64_t pred_offset = 0;
  int64_t func_offset = 0;
  for (int64_t w = 0; w < worlds.kb_count; ++w) {
    for (int p = 0; p < num_predicates; ++p) {
      auto& table = world.predicate_table(p);
      std::copy(worlds.pred_cells.begin() + pred_offset,
                worlds.pred_cells.begin() + pred_offset +
                    static_cast<int64_t>(table.size()),
                table.begin());
      pred_offset += static_cast<int64_t>(table.size());
    }
    for (int f = 0; f < num_functions; ++f) {
      auto& table = world.function_table(f);
      std::copy(worlds.func_cells.begin() + func_offset,
                worlds.func_cells.begin() + func_offset +
                    static_cast<int64_t>(table.size()),
                table.begin());
      func_offset += static_cast<int64_t>(table.size());
    }
    if (semantics::RunProgram(*query.program, world, &query_frame)) {
      ++both_count;
    }
  }
  return ResultFromCounts(worlds.kb_count, both_count);
}

}  // namespace

std::shared_ptr<const void> PatchExactWorlds(
    const std::shared_ptr<const void>& blob,
    const logic::Vocabulary& vocabulary,
    const std::vector<logic::FormulaPtr>& appended, size_t* bytes_out) {
  auto worlds = std::static_pointer_cast<const ExactWorldList>(blob);
  if (worlds == nullptr ||
      worlds->state != internal::WorldCacheState::kRecorded ||
      !worlds->valid) {
    return nullptr;
  }
  // The new KB is (old KB ∧ appended) and every recorded world satisfies
  // the old KB, so running just the appended conjunction over the recorded
  // worlds keeps exactly the worlds a fresh enumeration of the new KB
  // would record — in the same index order, hence identical counts.
  semantics::CompiledFormula delta = semantics::CompileFormula(
      logic::Formula::AndAll(appended), vocabulary);
  if (!delta.ok()) return nullptr;
  semantics::World world(&vocabulary, worlds->domain_size);
  semantics::EvalFrame frame;
  frame.Prepare(*delta.program, worlds->tolerances);
  const int num_predicates = vocabulary.num_predicates();
  const int num_functions = vocabulary.num_functions();

  auto patched = std::make_shared<ExactWorldList>();
  patched->state = internal::WorldCacheState::kRecorded;
  patched->valid = true;
  patched->pred_stride = worlds->pred_stride;
  patched->func_stride = worlds->func_stride;
  patched->domain_size = worlds->domain_size;
  patched->tolerances = worlds->tolerances;

  int64_t pred_offset = 0;
  int64_t func_offset = 0;
  for (int64_t w = 0; w < worlds->kb_count; ++w) {
    int64_t p_off = pred_offset;
    for (int p = 0; p < num_predicates; ++p) {
      auto& table = world.predicate_table(p);
      std::copy(worlds->pred_cells.begin() + p_off,
                worlds->pred_cells.begin() + p_off +
                    static_cast<int64_t>(table.size()),
                table.begin());
      p_off += static_cast<int64_t>(table.size());
    }
    int64_t f_off = func_offset;
    for (int f = 0; f < num_functions; ++f) {
      auto& table = world.function_table(f);
      std::copy(worlds->func_cells.begin() + f_off,
                worlds->func_cells.begin() + f_off +
                    static_cast<int64_t>(table.size()),
                table.begin());
      f_off += static_cast<int64_t>(table.size());
    }
    if (semantics::RunProgram(*delta.program, world, &frame)) {
      patched->pred_cells.insert(
          patched->pred_cells.end(), worlds->pred_cells.begin() + pred_offset,
          worlds->pred_cells.begin() + pred_offset + worlds->pred_stride);
      patched->func_cells.insert(
          patched->func_cells.end(), worlds->func_cells.begin() + func_offset,
          worlds->func_cells.begin() + func_offset + worlds->func_stride);
      ++patched->kb_count;
    }
    pred_offset += worlds->pred_stride;
    func_offset += worlds->func_stride;
  }
  if (bytes_out != nullptr) *bytes_out = patched->ByteSize();
  return patched;
}

bool ExactEngine::Supports(const logic::Vocabulary& vocabulary,
                           const logic::FormulaPtr& /*kb*/,
                           const logic::FormulaPtr& /*query*/,
                           int domain_size) const {
  if (domain_size <= 0) return false;
  return Log2WorldCount(vocabulary, domain_size) <= max_log2_worlds_;
}

FiniteResult ExactEngine::DegreeAt(
    const logic::Vocabulary& vocabulary, const logic::FormulaPtr& kb,
    const logic::FormulaPtr& query, int domain_size,
    const semantics::ToleranceVector& tolerances) const {
  return ComputeExact(vocabulary, semantics::CompileFormula(kb, vocabulary),
                      semantics::CompileFormula(query, vocabulary),
                      domain_size, tolerances, nullptr, num_threads_);
}

CostEstimate ExactEngine::EstimateCost(const QueryContext& ctx,
                                       const logic::FormulaPtr& query,
                                       int domain_size) const {
  CostEstimate cost;
  const double log2_worlds = Log2WorldCount(ctx.vocabulary(), domain_size);
  const double length = ApproximateProgramLength(ctx, ctx.kb()) +
                        ApproximateProgramLength(ctx, query);
  // Two evaluations (KB, then query on KB-worlds) per enumerated world.
  cost.work = log2_worlds >= 60.0 ? 1e20 : std::exp2(log2_worlds) * length;
  cost.error = 0.0;  // definitional computation
  char buf[128];
  std::snprintf(buf, sizeof(buf),
                "world odometer 2^%.1f x program length %.0f", log2_worlds,
                length);
  cost.basis = buf;
  return cost;
}

std::string ExactEngine::CacheSalt() const {
  // num_threads is deliberately absent: sharding merges in index order, so
  // results are bit-identical at every thread count.
  return "log2worlds=" + std::to_string(max_log2_worlds_);
}

FiniteResult ExactEngine::DegreeAtInContext(
    QueryContext& ctx, const logic::FormulaPtr& query, int domain_size,
    const semantics::ToleranceVector& tolerances) const {
  auto kb_compiled = ctx.Compiled(ctx.kb());
  auto query_compiled = ctx.Compiled(query);
  if (!ctx.caching_enabled()) {
    return ComputeExact(ctx.vocabulary(), *kb_compiled, *query_compiled,
                        domain_size, tolerances, nullptr, num_threads_);
  }
  std::string blob_key = "exact.worlds|" + std::to_string(domain_size) + "|" +
                         tolerances.CacheKey();
  return internal::LazyRecordReplay<ExactWorldList>(
      ctx, blob_key,
      [&](ExactWorldList* record) {
        return ComputeExact(ctx.vocabulary(), *kb_compiled, *query_compiled,
                            domain_size, tolerances, record, num_threads_);
      },
      [&](const ExactWorldList& worlds) {
        return ReplayExact(ctx.vocabulary(), worlds, *query_compiled,
                           domain_size, tolerances);
      });
}

}  // namespace rwl::engines
