#include "src/engines/exact_engine.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/combinatorics/logmath.h"
#include "src/core/query_context.h"
#include "src/engines/world_cache.h"
#include "src/semantics/compile.h"
#include "src/semantics/vm.h"
#include "src/semantics/world.h"
#include "src/util/thread_pool.h"

namespace rwl::engines {
namespace {

double Log2WorldCount(const logic::Vocabulary& vocabulary, int domain_size) {
  double log2_count = 0.0;
  for (const auto& p : vocabulary.predicates()) {
    log2_count += std::pow(static_cast<double>(domain_size), p.arity);
  }
  for (const auto& f : vocabulary.functions()) {
    log2_count += std::pow(static_cast<double>(domain_size), f.arity) *
                  std::log2(static_cast<double>(domain_size));
  }
  return log2_count;
}

// The KB-satisfying worlds of one (N, ⃗τ) point, flattened cell-by-cell in
// enumeration order.  Replay restores each world and evaluates only the
// query; the counts (and hence the probability) are identical to a full
// enumeration.  Cells are stored as bytes in predicate-id order (packed
// unary columns are widened to their legacy byte view), so the blob layout
// is independent of the in-memory packing.
struct ExactWorldList {
  // Record-and-replay protocol state (see engines/world_cache.h).
  internal::WorldCacheState state = internal::WorldCacheState::kSeenOnce;
  bool valid = false;  // recording outcome (maps to kRecorded / kTooBig)
  int64_t pred_stride = 0;
  int64_t func_stride = 0;
  int64_t kb_count = 0;
  std::vector<uint8_t> pred_cells;  // kb_count × pred_stride
  std::vector<int> func_cells;      // kb_count × func_stride
  // The (N, ⃗τ) the list was recorded at (part of the blob key, but carried
  // here too so PatchExactWorlds can re-run worlds without parsing keys).
  int domain_size = 0;
  semantics::ToleranceVector tolerances;

  size_t ByteSize() const {
    return pred_cells.size() * sizeof(uint8_t) +
           func_cells.size() * sizeof(int);
  }
};

// Memory cap for one recorded point (~64 MiB of cells).
constexpr int64_t kMaxRecordedBytes = 64ll << 20;

// Exact number of worlds 2^(predicate cells) × N^(function cells), or -1
// when it does not fit in an int64 (such instances never pass the
// enumeration cap of Supports, but DegreeAt is callable directly).
int64_t ExactWorldCountOrNegative(const semantics::World& probe,
                                  int domain_size) {
  constexpr int64_t kLimit = int64_t{1} << 62;
  int64_t total = 1;
  for (int64_t i = 0; i < probe.TotalPredicateCells(); ++i) {
    if (total > kLimit / 2) return -1;
    total *= 2;
  }
  for (int64_t i = 0; i < probe.TotalFunctionCells(); ++i) {
    if (domain_size > 1 && total > kLimit / domain_size) return -1;
    total *= domain_size;
  }
  return total;
}

// Appends every predicate cell of the world as bytes in enumeration order
// (the ExactWorldList layout).
void AppendPredicateCells(const semantics::World& world,
                          std::vector<uint8_t>* out) {
  const auto& vocabulary = world.vocabulary();
  const int n = world.domain_size();
  for (int p = 0; p < vocabulary.num_predicates(); ++p) {
    if (world.predicate_arity(p) == 1) {
      const size_t base = out->size();
      out->resize(base + n);
      world.CopyUnaryColumnToBytes(p, out->data() + base);
    } else {
      const auto& table = world.predicate_table(p);
      out->insert(out->end(), table.begin(), table.end());
    }
  }
}

// Restores all predicate cells of the world from one recorded stride.
void LoadPredicateCells(semantics::World* world, const uint8_t* cells) {
  const auto& vocabulary = world->vocabulary();
  const int n = world->domain_size();
  for (int p = 0; p < vocabulary.num_predicates(); ++p) {
    if (world->predicate_arity(p) == 1) {
      world->LoadUnaryColumnFromBytes(p, cells);
      cells += n;
    } else {
      auto& table = world->predicate_table(p);
      std::copy(cells, cells + table.size(), table.begin());
      cells += table.size();
    }
  }
}

void LoadFunctionCells(semantics::World* world, const int* cells) {
  const auto& vocabulary = world->vocabulary();
  for (int f = 0; f < vocabulary.num_functions(); ++f) {
    auto& table = world->function_table(f);
    std::copy(cells, cells + table.size(), table.begin());
    cells += table.size();
  }
}

// One shard's contribution to the enumeration: counts, and (when recording)
// the KB worlds of its contiguous index range in enumeration order.
struct ShardTally {
  int64_t kb_count = 0;
  int64_t both_count = 0;
  bool record_overflow = false;
  int64_t recorded_bytes = 0;
  int64_t kb_recorded = 0;
  std::vector<uint8_t> pred_cells;
  std::vector<int> func_cells;
};

void RunShard(const logic::Vocabulary& vocabulary,
              const semantics::Program& kb_program,
              const semantics::Program& query_program, int domain_size,
              const semantics::ToleranceVector& tolerances, int64_t start,
              int64_t count, bool recording,
              std::atomic<int64_t>* global_recorded_bytes,
              ShardTally* tally) {
  semantics::World world(&vocabulary, domain_size);
  world.SeekToIndex(start);
  semantics::EvalFrame kb_frame;
  semantics::EvalFrame query_frame;
  kb_frame.Prepare(kb_program, tolerances);
  query_frame.Prepare(query_program, tolerances);

  if (!recording) {
    // Batch path: the block VM advances the packed columns in place.
    // `count < 0` means "until the odometer wraps" (instances whose world
    // count overflows int64; they never pass the enumeration cap, but
    // DegreeAt is callable directly and must keep the serial semantics).
    const semantics::BlockCounts counts = semantics::RunProgramBlock(
        kb_program, &query_program, &world, &kb_frame, &query_frame, count);
    tally->kb_count = counts.first;
    tally->both_count = counts.both;
    return;
  }

  const int num_functions = vocabulary.num_functions();
  const int64_t stride_bytes =
      world.TotalPredicateCells() +
      world.TotalFunctionCells() * static_cast<int64_t>(sizeof(int));

  for (int64_t w = 0; count < 0 || w < count; ++w) {
    if (semantics::RunProgram(kb_program, world, &kb_frame)) {
      ++tally->kb_count;
      if (!tally->record_overflow) {
        tally->recorded_bytes += stride_bytes;
        // The byte cap is shared across shards (an atomic running total),
        // so the parallel recording path never holds more than ~the cap in
        // memory before the merge decides validity.  The verdict stays
        // deterministic: it depends only on whether the total bytes of ALL
        // KB worlds exceed the cap, not on shard interleaving.
        if (global_recorded_bytes->fetch_add(
                stride_bytes, std::memory_order_relaxed) +
                stride_bytes >
            kMaxRecordedBytes) {
          tally->record_overflow = true;
        } else {
          AppendPredicateCells(world, &tally->pred_cells);
          for (int f = 0; f < num_functions; ++f) {
            const auto& table = world.function_table(f);
            tally->func_cells.insert(tally->func_cells.end(), table.begin(),
                                     table.end());
          }
          ++tally->kb_recorded;
        }
      }
      if (semantics::RunProgram(query_program, world, &query_frame)) {
        ++tally->both_count;
      }
    }
    if (!world.AdvanceOdometer() && count < 0) break;
  }
}

FiniteResult ResultFromCounts(int64_t kb_count, int64_t both_count) {
  FiniteResult result;
  if (kb_count == 0) return result;
  result.well_defined = true;
  result.probability =
      static_cast<double>(both_count) / static_cast<double>(kb_count);
  result.log_numerator = both_count > 0
                             ? std::log(static_cast<double>(both_count))
                             : kNegInf;
  result.log_denominator = std::log(static_cast<double>(kb_count));
  return result;
}

// An instance the compiler rejected (unbound variable, unknown symbol —
// user-input errors that used to abort inside the tree-walker).  Reported
// as "engine gave up", which lets the pipeline fall through to other
// engines instead of killing the process.
FiniteResult GaveUp() {
  FiniteResult result;
  result.exhausted = true;
  return result;
}

// ---- counting-loop collapse --------------------------------------------
//
// When KB and query are both aggregate-only (compile.h AnalyzeAggregate),
// a world matters only through the cardinalities of the m involved unary
// predicates.  Partition the domain into the 2^m classes of those
// predicates' joint truth table: every assignment of the N elements to
// classes with counts (c_0, ..., c_{2^m - 1}) realizes the same program
// results, and exactly multinomial(N; c) column choices produce it.  The
// loop below enumerates the compositions of N — C(N + 2^m - 1, 2^m - 1)
// of them, polynomial in N — instead of the 2^(mN) worlds, and multiplies
// the cells the programs never observe back in as a free factor.  When the
// full world count fits int64 the weights are exact integers, so the
// resulting FiniteResult is bit-identical to a full enumeration.

constexpr int kMaxCountingPreds = 3;
constexpr double kMaxCompositions = 2e6;

struct CountingPlan {
  bool eligible = false;
  std::vector<int> preds;     // involved unary predicate ids, sorted
  double compositions = 0.0;  // C(N + 2^m - 1, 2^m - 1)
};

CountingPlan PlanCounting(const semantics::Program& kb_program,
                          const semantics::Program& query_program,
                          int domain_size) {
  CountingPlan plan;
  if (domain_size <= 0) return plan;
  semantics::AggregateAnalysis kb_agg =
      semantics::AnalyzeAggregate(kb_program);
  semantics::AggregateAnalysis query_agg =
      semantics::AnalyzeAggregate(query_program);
  if (!kb_agg.aggregate_only || !query_agg.aggregate_only) return plan;
  std::vector<int> preds = std::move(kb_agg.predicates);
  preds.insert(preds.end(), query_agg.predicates.begin(),
               query_agg.predicates.end());
  std::sort(preds.begin(), preds.end());
  preds.erase(std::unique(preds.begin(), preds.end()), preds.end());
  const int m = static_cast<int>(preds.size());
  if (m > kMaxCountingPreds) return plan;
  // Composition weights sum to 2^(mN); keep that inside double range for
  // the beyond-int64 instances.
  if (static_cast<int64_t>(m) * domain_size > 900) return plan;
  const int num_classes = 1 << m;
  plan.compositions =
      std::exp(LogBinomial(domain_size + num_classes - 1, num_classes - 1));
  if (!(plan.compositions <= kMaxCompositions)) return plan;
  plan.preds = std::move(preds);
  plan.eligible = true;
  return plan;
}

FiniteResult ComputeByCounting(const logic::Vocabulary& vocabulary,
                               const semantics::Program& kb_program,
                               const semantics::Program& query_program,
                               int domain_size,
                               const semantics::ToleranceVector& tolerances,
                               const CountingPlan& plan) {
  const int n = domain_size;
  const int m = static_cast<int>(plan.preds.size());
  const int num_classes = 1 << m;
  const int np = vocabulary.num_predicates();

  semantics::EvalFrame kb_frame;
  semantics::EvalFrame query_frame;
  kb_frame.Prepare(kb_program, tolerances);
  query_frame.Prepare(query_program, tolerances);

  std::vector<int64_t> single(np, 0);
  std::vector<int64_t> pair(static_cast<size_t>(np) * np, 0);
  const semantics::UnaryCountsView view{n, np, single.data(), pair.data()};

  semantics::World probe(&vocabulary, n);
  const int64_t exact_total = ExactWorldCountOrNegative(probe, n);
  const bool exact_mode = exact_total >= 0;

  // Binomial table up to N.  In exact mode every partial product of
  // binomials is a prefix multinomial ≤ 2^(mN) ≤ the int64 world count, so
  // uint64 arithmetic is exact; otherwise doubles carry the weights (and
  // only the beyond-enumeration instances ever take that path).
  std::vector<std::vector<uint64_t>> binom_u;
  std::vector<std::vector<double>> binom_d(n + 1,
                                           std::vector<double>(n + 1, 0.0));
  if (exact_mode) {
    binom_u.assign(n + 1, std::vector<uint64_t>(n + 1, 0));
  }
  for (int i = 0; i <= n; ++i) {
    binom_d[i][0] = 1.0;
    if (exact_mode) binom_u[i][0] = 1;
    for (int j = 1; j <= i; ++j) {
      binom_d[i][j] = binom_d[i - 1][j - 1] + binom_d[i - 1][j];
      if (exact_mode) binom_u[i][j] = binom_u[i - 1][j - 1] + binom_u[i - 1][j];
    }
  }

  uint64_t kb_u = 0;
  uint64_t both_u = 0;
  double kb_d = 0.0;
  double both_d = 0.0;

  // Adds (or removes) one class's element count to the cardinality view.
  auto apply = [&](int cls, int64_t c, int64_t sign) {
    for (int i = 0; i < m; ++i) {
      if (((cls >> i) & 1) == 0) continue;
      single[plan.preds[i]] += sign * c;
      for (int j = 0; j < m; ++j) {
        if (((cls >> j) & 1) == 0) continue;
        pair[static_cast<size_t>(plan.preds[i]) * np + plan.preds[j]] +=
            sign * c;
      }
    }
  };

  std::function<void(int, int64_t, uint64_t, double)> enumerate =
      [&](int cls, int64_t remaining, uint64_t weight_u, double weight_d) {
        if (cls == num_classes - 1) {
          apply(cls, remaining, +1);
          if (semantics::RunProgramOnCounts(kb_program, view, &kb_frame)) {
            if (exact_mode) {
              kb_u += weight_u;
            } else {
              kb_d += weight_d;
            }
            if (semantics::RunProgramOnCounts(query_program, view,
                                              &query_frame)) {
              if (exact_mode) {
                both_u += weight_u;
              } else {
                both_d += weight_d;
              }
            }
          }
          apply(cls, remaining, -1);
          return;
        }
        for (int64_t c = 0; c <= remaining; ++c) {
          apply(cls, c, +1);
          enumerate(cls + 1, remaining - c,
                    exact_mode ? weight_u * binom_u[remaining][c] : 0,
                    exact_mode ? 0.0 : weight_d * binom_d[remaining][c]);
          apply(cls, c, -1);
        }
      };
  enumerate(0, n, 1, 1.0);

  if (exact_mode) {
    // Cells the programs never observe multiply every class count by the
    // same free factor; restoring it makes the counts — and the resulting
    // FiniteResult — bit-identical to the full odometer enumeration.
    const int64_t involved = int64_t{1} << (m * n);
    const int64_t free_factor = exact_total / involved;
    return ResultFromCounts(static_cast<int64_t>(kb_u) * free_factor,
                            static_cast<int64_t>(both_u) * free_factor);
  }

  FiniteResult result;
  if (kb_d <= 0.0) return result;
  const double log_free =
      (static_cast<double>(probe.TotalPredicateCells()) -
       static_cast<double>(m) * n) *
          std::log(2.0) +
      static_cast<double>(probe.TotalFunctionCells()) *
          std::log(static_cast<double>(n));
  result.well_defined = true;
  result.probability = both_d / kb_d;
  result.log_numerator =
      both_d > 0.0 ? std::log(both_d) + log_free : kNegInf;
  result.log_denominator = std::log(kb_d) + log_free;
  return result;
}

FiniteResult ComputeExact(const logic::Vocabulary& vocabulary,
                          const semantics::CompiledFormula& kb,
                          const semantics::CompiledFormula& query,
                          int domain_size,
                          const semantics::ToleranceVector& tolerances,
                          ExactWorldList* record, int num_threads) {
  if (!kb.ok() || !query.ok()) return GaveUp();

  // Aggregate-only instances collapse to the counting loop (recording
  // requests keep the enumeration: the world list is query-independent
  // state other queries may replay against).
  if (record == nullptr) {
    const CountingPlan plan =
        PlanCounting(*kb.program, *query.program, domain_size);
    if (plan.eligible) {
      return ComputeByCounting(vocabulary, *kb.program, *query.program,
                               domain_size, tolerances, plan);
    }
  }

  semantics::World probe(&vocabulary, domain_size);
  const int64_t total = ExactWorldCountOrNegative(probe, domain_size);
  if (record != nullptr) {
    record->pred_stride = probe.TotalPredicateCells();
    record->func_stride = probe.TotalFunctionCells();
    record->domain_size = domain_size;
    record->tolerances = tolerances;
  }

  // Shard the contiguous world-index ranges across the pool; the merge
  // below reads the shards in index order, so counts and recorded cells
  // are identical to the serial enumeration at every thread count.
  int shards = 1;
  if (total > 0) {
    const int64_t max_shards = std::min<int64_t>(total, 64);
    shards = util::EffectiveThreads(num_threads,
                                    static_cast<int>(max_shards));
  }
  std::atomic<int64_t> global_recorded_bytes{0};
  if (shards <= 1 || total < 2048) {
    ShardTally tally;
    RunShard(vocabulary, *kb.program, *query.program, domain_size, tolerances,
             0, total, record != nullptr, &global_recorded_bytes, &tally);
    if (record != nullptr) {
      record->valid = !tally.record_overflow;
      if (record->valid) {
        record->pred_cells = std::move(tally.pred_cells);
        record->func_cells = std::move(tally.func_cells);
        record->kb_count = tally.kb_recorded;
      }
    }
    return ResultFromCounts(tally.kb_count, tally.both_count);
  }

  std::vector<ShardTally> tallies(shards);
  util::ParallelFor(shards, shards, [&](int s) {
    const int64_t start = total * s / shards;
    const int64_t end = total * (s + 1) / shards;
    RunShard(vocabulary, *kb.program, *query.program, domain_size, tolerances,
             start, end - start, record != nullptr, &global_recorded_bytes,
             &tallies[s]);
  });

  int64_t kb_count = 0;
  int64_t both_count = 0;
  int64_t recorded_bytes = 0;
  bool record_overflow = false;
  for (const ShardTally& tally : tallies) {
    kb_count += tally.kb_count;
    both_count += tally.both_count;
    recorded_bytes += tally.recorded_bytes;
    record_overflow = record_overflow || tally.record_overflow;
  }
  if (record != nullptr) {
    record->valid = !record_overflow && recorded_bytes <= kMaxRecordedBytes;
    if (record->valid) {
      for (ShardTally& tally : tallies) {
        record->pred_cells.insert(record->pred_cells.end(),
                                  tally.pred_cells.begin(),
                                  tally.pred_cells.end());
        record->func_cells.insert(record->func_cells.end(),
                                  tally.func_cells.begin(),
                                  tally.func_cells.end());
        record->kb_count += tally.kb_recorded;
      }
    }
  }
  return ResultFromCounts(kb_count, both_count);
}

FiniteResult ReplayExact(const logic::Vocabulary& vocabulary,
                         const ExactWorldList& worlds,
                         const semantics::CompiledFormula& query,
                         int domain_size,
                         const semantics::ToleranceVector& tolerances) {
  if (!query.ok()) return GaveUp();
  semantics::World world(&vocabulary, domain_size);
  semantics::EvalFrame query_frame;
  query_frame.Prepare(*query.program, tolerances);

  int64_t both_count = 0;
  int64_t pred_offset = 0;
  int64_t func_offset = 0;
  for (int64_t w = 0; w < worlds.kb_count; ++w) {
    LoadPredicateCells(&world, worlds.pred_cells.data() + pred_offset);
    LoadFunctionCells(&world, worlds.func_cells.data() + func_offset);
    pred_offset += worlds.pred_stride;
    func_offset += worlds.func_stride;
    if (semantics::RunProgram(*query.program, world, &query_frame)) {
      ++both_count;
    }
  }
  return ResultFromCounts(worlds.kb_count, both_count);
}

}  // namespace

std::shared_ptr<const void> PatchExactWorlds(
    const std::shared_ptr<const void>& blob,
    const logic::Vocabulary& vocabulary,
    const std::vector<logic::FormulaPtr>& appended, size_t* bytes_out) {
  auto worlds = std::static_pointer_cast<const ExactWorldList>(blob);
  if (worlds == nullptr ||
      worlds->state != internal::WorldCacheState::kRecorded ||
      !worlds->valid) {
    return nullptr;
  }
  // The new KB is (old KB ∧ appended) and every recorded world satisfies
  // the old KB, so running just the appended conjunction over the recorded
  // worlds keeps exactly the worlds a fresh enumeration of the new KB
  // would record — in the same index order, hence identical counts.
  semantics::CompiledFormula delta = semantics::CompileFormula(
      logic::Formula::AndAll(appended), vocabulary);
  if (!delta.ok()) return nullptr;
  semantics::World world(&vocabulary, worlds->domain_size);
  semantics::EvalFrame frame;
  frame.Prepare(*delta.program, worlds->tolerances);

  auto patched = std::make_shared<ExactWorldList>();
  patched->state = internal::WorldCacheState::kRecorded;
  patched->valid = true;
  patched->pred_stride = worlds->pred_stride;
  patched->func_stride = worlds->func_stride;
  patched->domain_size = worlds->domain_size;
  patched->tolerances = worlds->tolerances;

  int64_t pred_offset = 0;
  int64_t func_offset = 0;
  for (int64_t w = 0; w < worlds->kb_count; ++w) {
    LoadPredicateCells(&world, worlds->pred_cells.data() + pred_offset);
    LoadFunctionCells(&world, worlds->func_cells.data() + func_offset);
    if (semantics::RunProgram(*delta.program, world, &frame)) {
      patched->pred_cells.insert(
          patched->pred_cells.end(), worlds->pred_cells.begin() + pred_offset,
          worlds->pred_cells.begin() + pred_offset + worlds->pred_stride);
      patched->func_cells.insert(
          patched->func_cells.end(), worlds->func_cells.begin() + func_offset,
          worlds->func_cells.begin() + func_offset + worlds->func_stride);
      ++patched->kb_count;
    }
    pred_offset += worlds->pred_stride;
    func_offset += worlds->func_stride;
  }
  if (bytes_out != nullptr) *bytes_out = patched->ByteSize();
  return patched;
}

bool ExactEngine::Supports(const logic::Vocabulary& vocabulary,
                           const logic::FormulaPtr& kb,
                           const logic::FormulaPtr& query,
                           int domain_size) const {
  if (domain_size <= 0) return false;
  if (Log2WorldCount(vocabulary, domain_size) <= max_log2_worlds_) {
    return true;
  }
  // Beyond the enumeration cap, aggregate-only instances still collapse to
  // the polynomial counting loop.
  semantics::CompiledFormula kb_compiled =
      semantics::CompileFormula(kb, vocabulary);
  semantics::CompiledFormula query_compiled =
      semantics::CompileFormula(query, vocabulary);
  if (!kb_compiled.ok() || !query_compiled.ok()) return false;
  return PlanCounting(*kb_compiled.program, *query_compiled.program,
                      domain_size)
      .eligible;
}

FiniteResult ExactEngine::DegreeAt(
    const logic::Vocabulary& vocabulary, const logic::FormulaPtr& kb,
    const logic::FormulaPtr& query, int domain_size,
    const semantics::ToleranceVector& tolerances) const {
  return ComputeExact(vocabulary, semantics::CompileFormula(kb, vocabulary),
                      semantics::CompileFormula(query, vocabulary),
                      domain_size, tolerances, nullptr, num_threads_);
}

CostEstimate ExactEngine::EstimateCost(const QueryContext& ctx,
                                       const logic::FormulaPtr& query,
                                       int domain_size) const {
  CostEstimate cost;
  const double log2_worlds = Log2WorldCount(ctx.vocabulary(), domain_size);
  const double length = ApproximateProgramLength(ctx, ctx.kb()) +
                        ApproximateProgramLength(ctx, query);

  // Counting-loop plans are near-free and must be preferred: the loop runs
  // over compositions of N, not worlds.  Detecting eligibility needs the
  // compiled programs; reuse the context's cache and compile locally (a few
  // microseconds, uncached) only on a miss.
  auto kb_cached = ctx.CompiledIfCached(ctx.kb());
  auto query_cached = ctx.CompiledIfCached(query);
  semantics::CompiledFormula kb_local;
  semantics::CompiledFormula query_local;
  const semantics::Program* kb_program =
      kb_cached != nullptr && kb_cached->ok() ? kb_cached->program.get()
                                              : nullptr;
  if (kb_program == nullptr) {
    kb_local = semantics::CompileFormula(ctx.kb(), ctx.vocabulary());
    if (kb_local.ok()) kb_program = kb_local.program.get();
  }
  const semantics::Program* query_program =
      query_cached != nullptr && query_cached->ok()
          ? query_cached->program.get()
          : nullptr;
  if (query_program == nullptr) {
    query_local = semantics::CompileFormula(query, ctx.vocabulary());
    if (query_local.ok()) query_program = query_local.program.get();
  }
  if (kb_program != nullptr && query_program != nullptr) {
    const CountingPlan plan =
        PlanCounting(*kb_program, *query_program, domain_size);
    if (plan.eligible) {
      cost.work = plan.compositions * length;
      cost.error = 0.0;
      char buf[128];
      std::snprintf(buf, sizeof(buf),
                    "counting loop over %.3g compositions (%d predicates)",
                    plan.compositions,
                    static_cast<int>(plan.preds.size()));
      cost.basis = buf;
      return cost;
    }
  }

  // Two evaluations (KB, then query on KB-worlds) per enumerated world.
  cost.work = log2_worlds >= 60.0 ? 1e20 : std::exp2(log2_worlds) * length;
  cost.error = 0.0;  // definitional computation
  char buf[128];
  std::snprintf(buf, sizeof(buf),
                "world odometer 2^%.1f x program length %.0f", log2_worlds,
                length);
  cost.basis = buf;
  return cost;
}

std::string ExactEngine::CacheSalt() const {
  // num_threads is deliberately absent: sharding merges in index order, so
  // results are bit-identical at every thread count.
  return "log2worlds=" + std::to_string(max_log2_worlds_);
}

FiniteResult ExactEngine::DegreeAtInContext(
    QueryContext& ctx, const logic::FormulaPtr& query, int domain_size,
    const semantics::ToleranceVector& tolerances) const {
  auto kb_compiled = ctx.Compiled(ctx.kb());
  auto query_compiled = ctx.Compiled(query);
  // Counting-eligible queries bypass the record-and-replay protocol
  // entirely (checked BEFORE the blob lookup, so the recorded world list
  // stays query-independent): the counting loop is cheaper than a replay
  // and bit-identical to it.
  if (kb_compiled->ok() && query_compiled->ok()) {
    const CountingPlan plan = PlanCounting(
        *kb_compiled->program, *query_compiled->program, domain_size);
    if (plan.eligible) {
      return ComputeByCounting(ctx.vocabulary(), *kb_compiled->program,
                               *query_compiled->program, domain_size,
                               tolerances, plan);
    }
  }
  if (!ctx.caching_enabled()) {
    return ComputeExact(ctx.vocabulary(), *kb_compiled, *query_compiled,
                        domain_size, tolerances, nullptr, num_threads_);
  }
  std::string blob_key = "exact.worlds|" + std::to_string(domain_size) + "|" +
                         tolerances.CacheKey();
  return internal::LazyRecordReplay<ExactWorldList>(
      ctx, blob_key,
      [&](ExactWorldList* record) {
        return ComputeExact(ctx.vocabulary(), *kb_compiled, *query_compiled,
                            domain_size, tolerances, record, num_threads_);
      },
      [&](const ExactWorldList& worlds) {
        return ReplayExact(ctx.vocabulary(), worlds, *query_compiled,
                           domain_size, tolerances);
      });
}

}  // namespace rwl::engines
