#include "src/engines/maxent_engine.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <memory>
#include <set>
#include <string>

#include "src/core/query_context.h"
#include "src/logic/classalg.h"
#include "src/logic/printer.h"
#include "src/logic/transform.h"
#include "src/maxent/constraints.h"
#include "src/maxent/solver.h"
#include "src/semantics/evaluator.h"

namespace rwl::engines {
namespace {

using logic::AtomSet;
using logic::ClassUniverse;
using logic::Expr;
using logic::ExprPtr;
using logic::Formula;
using logic::FormulaPtr;

// Evaluates a constant-free comparison formula at the maxent point.
// Returns nullopt when the query is outside the supported fragment.
std::optional<bool> EvaluateAtPoint(const ClassUniverse& universe,
                                    const FormulaPtr& query,
                                    const std::vector<double>& p,
                                    const semantics::ToleranceVector& tol) {
  switch (query->kind()) {
    case Formula::Kind::kCompare: {
      auto eval_expr = [&](const ExprPtr& e,
                           auto&& self) -> std::optional<double> {
        switch (e->kind()) {
          case Expr::Kind::kConstant:
            return e->value();
          case Expr::Kind::kProportion:
          case Expr::Kind::kConditional: {
            if (e->vars().size() != 1) return std::nullopt;
            logic::TermPtr subject = logic::Term::Variable(e->vars()[0]);
            auto body = CompileClass(universe, e->body(), subject);
            if (!body) return std::nullopt;
            double num = rwl::maxent::MassOf(*body, p);
            if (e->kind() == Expr::Kind::kProportion) return num;
            auto cond = CompileClass(universe, e->cond(), subject);
            if (!cond) return std::nullopt;
            double den = rwl::maxent::MassOf(*cond, p);
            double joint = rwl::maxent::MassOf(body->Intersect(*cond), p);
            if (den <= 0.0) return std::nullopt;  // 0/0: defer to caller
            return joint / den;
          }
          case Expr::Kind::kAdd:
          case Expr::Kind::kSub:
          case Expr::Kind::kMul: {
            auto lhs = self(e->lhs(), self);
            auto rhs = self(e->rhs(), self);
            if (!lhs || !rhs) return std::nullopt;
            if (e->kind() == Expr::Kind::kAdd) return *lhs + *rhs;
            if (e->kind() == Expr::Kind::kSub) return *lhs - *rhs;
            return *lhs * *rhs;
          }
        }
        return std::nullopt;
      };
      auto lhs = eval_expr(query->expr_left(), eval_expr);
      auto rhs = eval_expr(query->expr_right(), eval_expr);
      if (!lhs || !rhs) return std::nullopt;
      double tau = tol.Get(query->tolerance_index());
      return semantics::CompareValues(*lhs, query->compare_op(), *rhs, tau);
    }
    case Formula::Kind::kNot: {
      auto inner = EvaluateAtPoint(universe, query->body(), p, tol);
      if (!inner) return std::nullopt;
      return !*inner;
    }
    case Formula::Kind::kAnd:
    case Formula::Kind::kOr: {
      auto lhs = EvaluateAtPoint(universe, query->left(), p, tol);
      auto rhs = EvaluateAtPoint(universe, query->right(), p, tol);
      if (!lhs || !rhs) return std::nullopt;
      return query->kind() == Formula::Kind::kAnd ? (*lhs && *rhs)
                                                  : (*lhs || *rhs);
    }
    default:
      return std::nullopt;
  }
}

}  // namespace

// The (KB, ⃗τ)-dependent half of InferAt: extraction + entropy solve.
// Cached per context (see InferAt(QueryContext&, ...)).
struct SolvedKb {
  rwl::maxent::ExtractedKb extracted;
  rwl::maxent::Solution solution;
};

namespace {

SolvedKb ExtractAndSolve(const logic::Vocabulary& vocabulary,
                         const logic::FormulaPtr& kb,
                         const semantics::ToleranceVector& tolerances) {
  SolvedKb solved;
  solved.extracted = rwl::maxent::ExtractUnaryKb(vocabulary, kb, tolerances);
  if (solved.extracted.ok) {
    solved.solution = rwl::maxent::Solve(solved.extracted.problem);
  }
  return solved;
}

// The query-dependent half: conditioning at the maxent point.
MaxEntEngine::Result InferAtSolved(const SolvedKb& solved,
                                   const logic::FormulaPtr& query,
                                   const semantics::ToleranceVector&
                                       tolerances) {
  MaxEntEngine::Result result;
  const auto& extracted = solved.extracted;
  const auto& solution = solved.solution;
  if (!extracted.ok) {
    result.note = extracted.error;
    return result;
  }
  ClassUniverse universe(extracted.predicates);
  if (!solution.feasible) {
    result.supported = true;
    result.note = "S(KB) empty (KB not eventually consistent at this τ)";
    return result;
  }
  result.atom_probabilities = solution.p;

  // Query forms, in order of preference:
  // (a) conjunction of class literals about constants → product of
  //     conditional masses at p*;
  // (b) constant-free comparison formula → 1/0 by truth at p*.
  std::set<std::string> query_constants = logic::ConstantsOf(query);
  if (!query_constants.empty()) {
    // Decompose the query into per-constant class formulas: conjuncts about
    // the same constant intersect (they constrain one element's atom);
    // distinct constants are asymptotically independent (Theorem 5.27), so
    // their conditional masses multiply.
    std::map<std::string, AtomSet> per_constant;
    for (const auto& conjunct : logic::Conjuncts(query)) {
      std::set<std::string> cs = logic::ConstantsOf(conjunct);
      if (cs.size() != 1) {
        result.note = "query conjunct not about a single constant: " +
                      logic::ToString(conjunct);
        return result;
      }
      const std::string& c = *cs.begin();
      auto cls = CompileClass(universe, conjunct,
                              logic::Term::Constant(c));
      if (!cls.has_value()) {
        result.note = "query conjunct outside the class fragment: " +
                      logic::ToString(conjunct);
        return result;
      }
      auto [it, inserted] = per_constant.emplace(c, *cls);
      if (!inserted) it->second = it->second.Intersect(*cls);
    }
    double value = 1.0;
    for (const auto& [c, cls] : per_constant) {
      AtomSet facts = AtomSet::All(universe);
      auto it = extracted.constant_facts.find(c);
      if (it != extracted.constant_facts.end()) facts = it->second;
      double denominator = rwl::maxent::MassOf(facts, solution.p);
      if (denominator <= 0.0) {
        result.supported = true;
        result.note = "facts about '" + c +
                      "' have vanishing probability at the maxent point";
        return result;
      }
      double numerator = rwl::maxent::MassOf(cls.Intersect(facts),
                                             solution.p);
      value *= numerator / denominator;
    }
    result.supported = true;
    result.feasible = true;
    result.value = value;
    return result;
  }

  auto truth = EvaluateAtPoint(universe, query, solution.p, tolerances);
  if (!truth.has_value()) {
    result.note = "query outside the maxent fragment: " +
                  logic::ToString(query);
    return result;
  }
  result.supported = true;
  result.feasible = true;
  result.value = *truth ? 1.0 : 0.0;
  return result;
}

}  // namespace

MaxEntEngine::Result MaxEntEngine::InferAt(
    const logic::Vocabulary& vocabulary, const logic::FormulaPtr& kb,
    const logic::FormulaPtr& query,
    const semantics::ToleranceVector& tolerances) const {
  return InferAtSolved(ExtractAndSolve(vocabulary, kb, tolerances), query,
                       tolerances);
}

MaxEntEngine::Result MaxEntEngine::InferAt(
    QueryContext& ctx, const logic::FormulaPtr& query,
    const semantics::ToleranceVector& tolerances) const {
  std::string key = "maxent.solved|" + tolerances.CacheKey();
  auto solved =
      std::static_pointer_cast<const SolvedKb>(ctx.LookupBlob(key));
  if (solved == nullptr) {
    auto computed = std::make_shared<SolvedKb>(
        ExtractAndSolve(ctx.vocabulary(), ctx.kb(), tolerances));
    ctx.StoreBlob(key, computed);
    solved = std::move(computed);
  }
  return InferAtSolved(*solved, query, tolerances);
}

namespace {

// Shared τ → 0 schedule: both InferLimit overloads must run the identical
// loop for their answers to agree bit for bit.
MaxEntEngine::LimitResultME InferLimitWith(
    const std::function<
        MaxEntEngine::Result(const semantics::ToleranceVector&)>& infer_at,
    const semantics::ToleranceVector& base_tolerances,
    const std::vector<double>& scales) {
  MaxEntEngine::LimitResultME result;
  for (double scale : scales) {
    MaxEntEngine::Result at = infer_at(base_tolerances.Scaled(scale));
    if (!at.supported || !at.feasible) {
      result.note = at.note;
      return result;
    }
    result.per_scale_values.push_back(at.value);
  }
  result.supported = true;
  result.value = result.per_scale_values.back();
  result.converged = true;
  if (result.per_scale_values.size() >= 2) {
    double prev =
        result.per_scale_values[result.per_scale_values.size() - 2];
    result.converged = std::fabs(result.value - prev) < 2e-2;
  }
  return result;
}

}  // namespace

MaxEntEngine::LimitResultME MaxEntEngine::InferLimit(
    QueryContext& ctx, const logic::FormulaPtr& query,
    const semantics::ToleranceVector& base_tolerances,
    const std::vector<double>& scales) const {
  return InferLimitWith(
      [&](const semantics::ToleranceVector& tolerances) {
        return InferAt(ctx, query, tolerances);
      },
      base_tolerances, scales);
}

MaxEntEngine::LimitResultME MaxEntEngine::InferLimit(
    const logic::Vocabulary& vocabulary, const logic::FormulaPtr& kb,
    const logic::FormulaPtr& query,
    const semantics::ToleranceVector& base_tolerances,
    const std::vector<double>& scales) const {
  return InferLimitWith(
      [&](const semantics::ToleranceVector& tolerances) {
        return InferAt(vocabulary, kb, query, tolerances);
      },
      base_tolerances, scales);
}

std::optional<std::vector<double>> MaxEntEngine::MaxEntPoint(
    const logic::Vocabulary& vocabulary, const logic::FormulaPtr& kb,
    const semantics::ToleranceVector& tolerances) const {
  auto extracted = rwl::maxent::ExtractUnaryKb(vocabulary, kb, tolerances);
  if (!extracted.ok) return std::nullopt;
  auto solution = rwl::maxent::Solve(extracted.problem);
  if (!solution.feasible) return std::nullopt;
  return solution.p;
}

Capability MaxEntEngine::Assess(const QueryContext& ctx,
                                const logic::FormulaPtr& query) const {
  Capability cap = DescribeInstance(ctx.vocabulary(), query);
  cap.applicable =
      ctx.vocabulary().IsUnaryRelational() && cap.num_atoms > 0;
  cap.reason = cap.applicable
                   ? "unary fragment (linear-fragment check happens in the "
                     "solve)"
                   : "outside the unary fragment";
  return cap;
}

CostEstimate MaxEntEngine::EstimateCost(const QueryContext& ctx,
                                        const logic::FormulaPtr& query) const {
  (void)query;
  CostEstimate cost;
  const int k = std::min(ctx.vocabulary().num_predicates(), 30);
  const double atoms = std::exp2(static_cast<double>(k));
  // Iterative entropy maximization over the atom simplex, re-solved per
  // tolerance scale of InferLimit's own τ → 0 schedule (its default
  // three scales — the solve does not follow the sweep engines'
  // LimitOptions schedule).  The per-atom weight is
  // calibrated against the profile engine's leaf-evaluation unit: one
  // solve costs hundreds of projected-gradient iterations with
  // exponential updates per atom, which measures ~10^4-10^5 profile-leaf
  // equivalents per atom — so the solve only wins once the sweep's leaf
  // count outgrows it (wide vocabularies, large N), matching observed
  // wall time.
  cost.work = atoms * 3.0e4 * 3.0;
  cost.error = 0.0;  // the true N → ∞ limit, solved to tolerance
  cost.basis = "entropy solve over " +
               std::to_string(static_cast<long long>(atoms)) +
               " atoms x 3 tolerance scales";
  return cost;
}

}  // namespace rwl::engines
