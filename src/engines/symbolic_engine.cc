#include "src/engines/symbolic_engine.h"

#include <algorithm>
#include <map>
#include <set>
#include <sstream>

#include "src/core/query_context.h"
#include "src/evidence/dempster.h"
#include "src/logic/classalg.h"
#include "src/logic/printer.h"
#include "src/logic/transform.h"

namespace rwl::engines {
namespace {

using logic::AtomSet;
using logic::ClassUniverse;
using logic::CompareOp;
using logic::Expr;
using logic::ExprPtr;
using logic::Formula;
using logic::FormulaPtr;
using logic::Term;
using logic::TermPtr;

// ---------------------------------------------------------------------------
// Statistical-conjunct parsing.
// ---------------------------------------------------------------------------

// One comparison conjunct normalized to bounds on a proportion expression.
struct RawBound {
  ExprPtr expr;
  bool has_lo = false;
  bool has_hi = false;
  double lo = 0.0;
  double hi = 1.0;
  int tolerance = 1;
};

std::optional<RawBound> ParseBound(const FormulaPtr& conjunct) {
  if (conjunct->kind() != Formula::Kind::kCompare) return std::nullopt;
  ExprPtr prop = conjunct->expr_left();
  ExprPtr constant = conjunct->expr_right();
  CompareOp op = conjunct->compare_op();
  bool flipped = false;
  if (prop->kind() == Expr::Kind::kConstant) {
    std::swap(prop, constant);
    flipped = true;
  }
  if (constant->kind() != Expr::Kind::kConstant) return std::nullopt;
  if (prop->kind() != Expr::Kind::kProportion &&
      prop->kind() != Expr::Kind::kConditional) {
    return std::nullopt;
  }
  RawBound out;
  out.expr = prop;
  out.tolerance = conjunct->tolerance_index();
  double v = constant->value();
  // Normalize "v op prop" to "prop op' v".
  if (flipped) {
    switch (op) {
      case CompareOp::kApproxLeq: op = CompareOp::kApproxGeq; break;
      case CompareOp::kApproxGeq: op = CompareOp::kApproxLeq; break;
      case CompareOp::kLeq: op = CompareOp::kGeq; break;
      case CompareOp::kGeq: op = CompareOp::kLeq; break;
      default: break;
    }
  }
  switch (op) {
    case CompareOp::kApproxEq:
    case CompareOp::kEq:
      out.has_lo = out.has_hi = true;
      out.lo = out.hi = v;
      break;
    case CompareOp::kApproxLeq:
    case CompareOp::kLeq:
      out.has_hi = true;
      out.hi = v;
      break;
    case CompareOp::kApproxGeq:
    case CompareOp::kGeq:
      out.has_lo = true;
      out.lo = v;
      break;
  }
  return out;
}

// ---------------------------------------------------------------------------
// Pattern matching: formula-with-variables against a ground instance, where
// the designated variables must be matched by constant terms.
// ---------------------------------------------------------------------------

using VarBinding = std::map<std::string, TermPtr>;

bool MatchTerm(const TermPtr& pattern, const TermPtr& instance,
               const std::set<std::string>& wildcards, VarBinding* binding);
bool MatchFormula(const FormulaPtr& pattern, const FormulaPtr& instance,
                  std::set<std::string> wildcards, VarBinding* binding);

bool MatchTerm(const TermPtr& pattern, const TermPtr& instance,
               const std::set<std::string>& wildcards, VarBinding* binding) {
  if (pattern->is_variable() && wildcards.count(pattern->name()) > 0) {
    if (!instance->is_constant()) return false;
    auto it = binding->find(pattern->name());
    if (it != binding->end()) return Term::Equal(it->second, instance);
    (*binding)[pattern->name()] = instance;
    return true;
  }
  if (pattern->kind() != instance->kind()) return false;
  if (pattern->name() != instance->name()) return false;
  if (pattern->args().size() != instance->args().size()) return false;
  for (size_t i = 0; i < pattern->args().size(); ++i) {
    if (!MatchTerm(pattern->args()[i], instance->args()[i], wildcards,
                   binding)) {
      return false;
    }
  }
  return true;
}

bool MatchExpr(const ExprPtr& pattern, const ExprPtr& instance,
               std::set<std::string> wildcards, VarBinding* binding) {
  if ((pattern == nullptr) != (instance == nullptr)) return false;
  if (pattern == nullptr) return true;
  if (pattern->kind() != instance->kind()) return false;
  switch (pattern->kind()) {
    case Expr::Kind::kConstant:
      return pattern->value() == instance->value();
    case Expr::Kind::kProportion:
    case Expr::Kind::kConditional: {
      if (pattern->vars() != instance->vars()) return false;
      std::set<std::string> inner = wildcards;
      for (const auto& v : pattern->vars()) inner.erase(v);
      if (!MatchFormula(pattern->body(), instance->body(), inner, binding)) {
        return false;
      }
      if (pattern->kind() == Expr::Kind::kConditional) {
        return MatchFormula(pattern->cond(), instance->cond(), inner, binding);
      }
      return true;
    }
    case Expr::Kind::kAdd:
    case Expr::Kind::kSub:
    case Expr::Kind::kMul:
      return MatchExpr(pattern->lhs(), instance->lhs(), wildcards, binding) &&
             MatchExpr(pattern->rhs(), instance->rhs(), wildcards, binding);
  }
  return false;
}

bool MatchFormula(const FormulaPtr& pattern, const FormulaPtr& instance,
                  std::set<std::string> wildcards, VarBinding* binding) {
  if (pattern->kind() != instance->kind()) return false;
  switch (pattern->kind()) {
    case Formula::Kind::kTrue:
    case Formula::Kind::kFalse:
      return true;
    case Formula::Kind::kAtom:
      if (pattern->predicate() != instance->predicate()) return false;
      if (pattern->terms().size() != instance->terms().size()) return false;
      for (size_t i = 0; i < pattern->terms().size(); ++i) {
        if (!MatchTerm(pattern->terms()[i], instance->terms()[i], wildcards,
                       binding)) {
          return false;
        }
      }
      return true;
    case Formula::Kind::kEqual:
      return MatchTerm(pattern->terms()[0], instance->terms()[0], wildcards,
                       binding) &&
             MatchTerm(pattern->terms()[1], instance->terms()[1], wildcards,
                       binding);
    case Formula::Kind::kNot:
      return MatchFormula(pattern->body(), instance->body(), wildcards,
                          binding);
    case Formula::Kind::kAnd:
    case Formula::Kind::kOr:
    case Formula::Kind::kImplies:
    case Formula::Kind::kIff:
      return MatchFormula(pattern->left(), instance->left(), wildcards,
                          binding) &&
             MatchFormula(pattern->right(), instance->right(), wildcards,
                          binding);
    case Formula::Kind::kForAll:
    case Formula::Kind::kExists: {
      if (pattern->var() != instance->var()) return false;
      std::set<std::string> inner = wildcards;
      inner.erase(pattern->var());
      return MatchFormula(pattern->body(), instance->body(), inner, binding);
    }
    case Formula::Kind::kCompare:
      if (pattern->compare_op() != instance->compare_op()) return false;
      if (pattern->tolerance_index() != instance->tolerance_index()) {
        return false;
      }
      return MatchExpr(pattern->expr_left(), instance->expr_left(), wildcards,
                       binding) &&
             MatchExpr(pattern->expr_right(), instance->expr_right(),
                       wildcards, binding);
  }
  return false;
}

// Matches `pattern` (free vars `vars` standing for constants) against
// `instance`; all vars must end up bound.
std::optional<VarBinding> MatchToConstants(
    const FormulaPtr& pattern, const FormulaPtr& instance,
    const std::vector<std::string>& vars) {
  VarBinding binding;
  std::set<std::string> wildcards(vars.begin(), vars.end());
  if (!MatchFormula(pattern, instance, wildcards, &binding)) {
    return std::nullopt;
  }
  for (const auto& v : vars) {
    if (binding.find(v) == binding.end()) return std::nullopt;
  }
  return binding;
}

// Predicate name → arity for every atom occurring in f.
void CollectPredicateArities(const FormulaPtr& f,
                             std::map<std::string, int>* out) {
  if (f == nullptr) return;
  if (f->kind() == Formula::Kind::kAtom) {
    (*out)[f->predicate()] = static_cast<int>(f->terms().size());
  }
  CollectPredicateArities(f->left(), out);
  CollectPredicateArities(f->right(), out);
  for (const ExprPtr& e : {f->expr_left(), f->expr_right()}) {
    if (e == nullptr) continue;
    CollectPredicateArities(e->body(), out);
    CollectPredicateArities(e->cond(), out);
    if (e->lhs() != nullptr) {
      // Arithmetic nodes: recurse through nested proportions.
      std::vector<ExprPtr> stack = {e->lhs(), e->rhs()};
      while (!stack.empty()) {
        ExprPtr cur = stack.back();
        stack.pop_back();
        if (cur == nullptr) continue;
        CollectPredicateArities(cur->body(), out);
        CollectPredicateArities(cur->cond(), out);
        if (cur->lhs() != nullptr) stack.push_back(cur->lhs());
        if (cur->rhs() != nullptr) stack.push_back(cur->rhs());
      }
    }
  }
}

// Candidate reference-class statement for a query φ(c): a unary-variable
// stat whose instantiated target equals the query.
struct Candidate {
  const StatStatement* stat = nullptr;
  std::string constant;          // the matched c
  std::string var;               // the stat's variable
  AtomSet refclass_atoms;        // compiled refclass
};

struct ClassSetup {
  ClassUniverse universe{std::vector<std::string>{}};
  logic::Taxonomy taxonomy{universe};
  bool ok = false;

  explicit ClassSetup(std::vector<std::string> predicates)
      : universe(std::move(predicates)), taxonomy(universe) {}
};

std::vector<std::string> UnaryPredicates(const KbAnalysis& kb,
                                         const FormulaPtr& query) {
  std::map<std::string, int> arities;
  for (const auto& conjunct : kb.conjuncts) {
    CollectPredicateArities(conjunct, &arities);
  }
  CollectPredicateArities(query, &arities);
  std::vector<std::string> unary;
  for (const auto& [name, arity] : arities) {
    if (arity == 1) unary.push_back(name);
  }
  return unary;
}

// Facts about constant `c` as an atom set: the intersection of every KB
// conjunct that compiles as a class expression about c.  `consumed[i]`
// marks conjuncts to skip (statistical sources).
AtomSet FactsAbout(const ClassUniverse& universe, const KbAnalysis& kb,
                   const std::string& constant,
                   std::vector<size_t>* fact_indices) {
  AtomSet facts = AtomSet::All(universe);
  TermPtr subject = Term::Constant(constant);
  for (size_t i = 0; i < kb.conjuncts.size(); ++i) {
    if (kb.is_stat_conjunct[i]) continue;
    std::set<std::string> constants = logic::ConstantsOf(kb.conjuncts[i]);
    if (constants.size() != 1 || *constants.begin() != constant) continue;
    auto cls = CompileClass(universe, kb.conjuncts[i], subject);
    if (!cls.has_value()) continue;
    facts = facts.Intersect(*cls);
    if (fact_indices != nullptr) fact_indices->push_back(i);
  }
  return facts;
}

std::string IntervalString(double lo, double hi) {
  std::ostringstream out;
  if (lo == hi) {
    out << lo;
  } else {
    out << "[" << lo << ", " << hi << "]";
  }
  return out.str();
}

}  // namespace

std::optional<ExistsUniqueParts> MatchExistsUnique(const FormulaPtr& f) {
  // Shape: ∃x (body ∧ ∀y (body[x/y] ⇒ y = x)).
  if (f->kind() != Formula::Kind::kExists) return std::nullopt;
  const std::string& x = f->var();
  const FormulaPtr& conj = f->body();
  if (conj->kind() != Formula::Kind::kAnd) return std::nullopt;
  const FormulaPtr& body = conj->left();
  const FormulaPtr& unique = conj->right();
  if (unique->kind() != Formula::Kind::kForAll) return std::nullopt;
  const std::string& y = unique->var();
  const FormulaPtr& impl = unique->body();
  if (impl->kind() != Formula::Kind::kImplies) return std::nullopt;
  const FormulaPtr& eq = impl->right();
  if (eq->kind() != Formula::Kind::kEqual) return std::nullopt;
  // y = x in either order.
  auto is_var = [](const TermPtr& t, const std::string& name) {
    return t->is_variable() && t->name() == name;
  };
  bool eq_ok = (is_var(eq->terms()[0], y) && is_var(eq->terms()[1], x)) ||
               (is_var(eq->terms()[0], x) && is_var(eq->terms()[1], y));
  if (!eq_ok) return std::nullopt;
  FormulaPtr renamed = logic::SubstituteVariable(body, x, Term::Variable(y));
  if (!Formula::StructuralEqual(renamed, impl->left())) return std::nullopt;
  return ExistsUniqueParts{x, body};
}

KbAnalysis AnalyzeKb(const FormulaPtr& kb) {
  KbAnalysis out;
  out.conjuncts = logic::Conjuncts(kb);
  out.is_stat_conjunct.assign(out.conjuncts.size(), false);

  // Group bounds by structurally-equal proportion expression.
  struct Group {
    ExprPtr expr;
    double lo = 0.0;
    double hi = 1.0;
    bool has_lo = false;
    bool has_hi = false;
    int tol_lo = 1;
    int tol_hi = 1;
    std::vector<size_t> sources;
  };
  std::vector<Group> groups;
  for (size_t i = 0; i < out.conjuncts.size(); ++i) {
    auto bound = ParseBound(out.conjuncts[i]);
    if (!bound.has_value()) continue;
    Group* group = nullptr;
    for (auto& g : groups) {
      if (Expr::Equal(g.expr, bound->expr)) {
        group = &g;
        break;
      }
    }
    if (group == nullptr) {
      groups.push_back(Group{});
      group = &groups.back();
      group->expr = bound->expr;
    }
    if (bound->has_lo && (!group->has_lo || bound->lo > group->lo)) {
      group->has_lo = true;
      group->lo = bound->lo;
      group->tol_lo = bound->tolerance;
    }
    if (bound->has_hi && (!group->has_hi || bound->hi < group->hi)) {
      group->has_hi = true;
      group->hi = bound->hi;
      group->tol_hi = bound->tolerance;
    }
    group->sources.push_back(i);
    out.is_stat_conjunct[i] = true;
  }

  for (const auto& g : groups) {
    StatStatement stat;
    stat.target = g.expr->body();
    stat.refclass = g.expr->kind() == Expr::Kind::kConditional
                        ? g.expr->cond()
                        : Formula::True();
    stat.vars = g.expr->vars();
    stat.lo = g.has_lo ? g.lo : 0.0;
    stat.hi = g.has_hi ? g.hi : 1.0;
    stat.tolerance_lo = g.tol_lo;
    stat.tolerance_hi = g.tol_hi;
    stat.source_conjuncts = g.sources;
    out.stats.push_back(std::move(stat));
  }
  return out;
}

// ---------------------------------------------------------------------------
// Theorem 5.6: direct inference.
// ---------------------------------------------------------------------------

std::optional<SymbolicAnswer> SymbolicEngine::TryDirectInference(
    const KbAnalysis& kb, const FormulaPtr& query) const {
  for (const auto& stat : kb.stats) {
    auto binding = MatchToConstants(stat.target, query, stat.vars);
    if (!binding.has_value()) continue;

    // The matched constants ⃗c, pairwise distinct.
    std::set<std::string> c_names;
    std::vector<std::pair<std::string, TermPtr>> subst;
    bool distinct = true;
    for (const auto& [var, term] : *binding) {
      if (!c_names.insert(term->name()).second) distinct = false;
      subst.emplace_back(var, term);
    }
    if (!distinct) continue;

    // ⃗c must not occur in φ(⃗x) or ψ(⃗x) themselves.
    bool clean = true;
    for (const auto& c : c_names) {
      if (logic::MentionsConstant(stat.target, c) ||
          logic::MentionsConstant(stat.refclass, c)) {
        clean = false;
      }
    }
    if (!clean) continue;

    // ψ(⃗c) must be asserted by the KB.  ψ may itself be a conjunction whose
    // parts appear as separate conjuncts (e.g. Elephant(Clyde) and
    // Zookeeper(Eric) for the pair class of Example 5.12), so each part of
    // the flattened fact must appear as a KB conjunct.
    FormulaPtr fact = logic::SubstituteVariables(stat.refclass, subst);
    std::set<size_t> excluded(stat.source_conjuncts.begin(),
                              stat.source_conjuncts.end());
    bool fact_found = true;
    for (const auto& part : logic::Conjuncts(fact)) {
      bool part_found = false;
      for (size_t i = 0; i < kb.conjuncts.size(); ++i) {
        if (Formula::StructuralEqual(kb.conjuncts[i], part)) {
          part_found = true;
          excluded.insert(i);
        }
      }
      if (!part_found) {
        fact_found = false;
        break;
      }
    }
    if (!fact_found) continue;

    // Everything else (KB′) must not mention any constant in ⃗c.
    bool rest_clean = true;
    for (size_t i = 0; i < kb.conjuncts.size() && rest_clean; ++i) {
      if (excluded.count(i) > 0) continue;
      for (const auto& c : c_names) {
        if (logic::MentionsConstant(kb.conjuncts[i], c)) {
          rest_clean = false;
          break;
        }
      }
    }
    if (!rest_clean) continue;

    SymbolicAnswer answer;
    answer.status = SymbolicAnswer::Status::kInterval;
    answer.lo = stat.lo;
    answer.hi = stat.hi;
    answer.rule = "Theorem 5.6 (direct inference)";
    answer.explanation = "reference class " + logic::ToString(stat.refclass) +
                         " gives " + IntervalString(stat.lo, stat.hi);
    return answer;
  }
  return std::nullopt;
}

// ---------------------------------------------------------------------------
// Theorem 5.16: minimal reference class, irrelevant information ignored.
// ---------------------------------------------------------------------------

namespace {

// Collects the unary-variable stats whose instantiated target equals the
// query, grouped implicitly by sharing the same target shape.
std::vector<Candidate> CandidatesFor(const KbAnalysis& kb,
                                     const FormulaPtr& query,
                                     const ClassUniverse& universe) {
  std::vector<Candidate> out;
  for (const auto& stat : kb.stats) {
    if (stat.vars.size() != 1) continue;
    auto binding = MatchToConstants(stat.target, query, stat.vars);
    if (!binding.has_value()) continue;
    const TermPtr& c = binding->begin()->second;
    auto atoms = CompileClass(universe, stat.refclass,
                              Term::Variable(stat.vars[0]));
    if (!atoms.has_value()) continue;
    Candidate cand;
    cand.stat = &stat;
    cand.constant = c->name();
    cand.var = stat.vars[0];
    cand.refclass_atoms = *atoms;
    out.push_back(cand);
  }
  return out;
}

// Condition (c) of Theorem 5.16 / the symbol condition of 5.23: the symbols
// of φ may appear only inside the candidate stats' targets.
bool PhiSymbolsConfined(const KbAnalysis& kb,
                        const std::vector<Candidate>& candidates,
                        const std::set<std::string>& phi_symbols) {
  std::set<size_t> stat_sources;
  for (const auto& cand : candidates) {
    for (size_t s : cand.stat->source_conjuncts) stat_sources.insert(s);
    // φ's symbols must not leak into the reference class itself.
    std::set<std::string> ref_syms = logic::SymbolsOf(cand.stat->refclass);
    for (const auto& sym : phi_symbols) {
      if (ref_syms.count(sym) > 0) return false;
    }
  }
  for (size_t i = 0; i < kb.conjuncts.size(); ++i) {
    if (stat_sources.count(i) > 0) continue;
    std::set<std::string> syms = logic::SymbolsOf(kb.conjuncts[i]);
    for (const auto& sym : phi_symbols) {
      if (syms.count(sym) > 0) return false;
    }
  }
  return true;
}

}  // namespace

std::optional<SymbolicAnswer> SymbolicEngine::TryMinimalReferenceClass(
    const KbAnalysis& kb, const FormulaPtr& query) const {
  ClassUniverse universe(UnaryPredicates(kb, query));
  if (universe.num_predicates() == 0 ||
      universe.num_predicates() > ClassUniverse::kMaxPredicates) {
    return std::nullopt;
  }
  std::vector<Candidate> candidates = CandidatesFor(kb, query, universe);
  if (candidates.empty()) return std::nullopt;

  // All candidates must concern the same constant.
  const std::string& c = candidates[0].constant;
  for (const auto& cand : candidates) {
    if (cand.constant != c) return std::nullopt;
  }
  // Condition (d): c must not occur in φ(x).
  if (logic::MentionsConstant(candidates[0].stat->target, c)) {
    return std::nullopt;
  }
  // Condition (c).
  std::set<std::string> phi_symbols =
      logic::SymbolsOf(candidates[0].stat->target);
  if (!PhiSymbolsConfined(kb, candidates, phi_symbols)) return std::nullopt;

  logic::Taxonomy taxonomy(universe);
  for (const auto& conjunct : kb.conjuncts) taxonomy.Absorb(conjunct);

  AtomSet facts = FactsAbout(universe, kb, c, nullptr);

  // Find ψ0: entailed about c, and minimal against every other candidate.
  std::optional<SymbolicAnswer> best;
  for (const auto& cand : candidates) {
    if (!taxonomy.Entails_Subset(facts, cand.refclass_atoms)) continue;
    bool minimal = true;
    for (const auto& other : candidates) {
      if (&other == &cand) continue;
      bool subset = taxonomy.Entails_Subset(cand.refclass_atoms,
                                            other.refclass_atoms);
      bool disjoint = taxonomy.Entails_Disjoint(cand.refclass_atoms,
                                                other.refclass_atoms);
      if (!subset && !disjoint) {
        minimal = false;
        break;
      }
    }
    if (!minimal) continue;
    SymbolicAnswer answer;
    answer.status = SymbolicAnswer::Status::kInterval;
    answer.lo = cand.stat->lo;
    answer.hi = cand.stat->hi;
    answer.rule = "Theorem 5.16 (minimal reference class)";
    answer.explanation =
        "minimal class " + logic::ToString(cand.stat->refclass) + " gives " +
        IntervalString(answer.lo, answer.hi);
    // Prefer the tightest among equal minimal classes.
    if (!best.has_value() || answer.hi - answer.lo < best->hi - best->lo) {
      best = answer;
    }
  }
  return best;
}

// ---------------------------------------------------------------------------
// Theorem 5.23: chains of reference classes and the strength rule.
// ---------------------------------------------------------------------------

std::optional<SymbolicAnswer> SymbolicEngine::TryStrengthRule(
    const KbAnalysis& kb, const FormulaPtr& query) const {
  ClassUniverse universe(UnaryPredicates(kb, query));
  if (universe.num_predicates() == 0 ||
      universe.num_predicates() > ClassUniverse::kMaxPredicates) {
    return std::nullopt;
  }
  std::vector<Candidate> candidates = CandidatesFor(kb, query, universe);
  if (candidates.size() < 2) return std::nullopt;

  const std::string& c = candidates[0].constant;
  for (const auto& cand : candidates) {
    if (cand.constant != c) return std::nullopt;
  }
  if (logic::MentionsConstant(candidates[0].stat->target, c)) {
    return std::nullopt;
  }
  std::set<std::string> phi_symbols =
      logic::SymbolsOf(candidates[0].stat->target);
  if (!PhiSymbolsConfined(kb, candidates, phi_symbols)) return std::nullopt;

  logic::Taxonomy taxonomy(universe);
  for (const auto& conjunct : kb.conjuncts) taxonomy.Absorb(conjunct);

  // Sort into a chain ψ1 ⊆ ψ2 ⊆ ... (fails if incomparable).
  std::vector<const Candidate*> chain;
  for (const auto& cand : candidates) chain.push_back(&cand);
  std::sort(chain.begin(), chain.end(),
            [&](const Candidate* a, const Candidate* b) {
              return taxonomy.Entails_Subset(a->refclass_atoms,
                                             b->refclass_atoms) &&
                     !AtomSet::Equal(a->refclass_atoms, b->refclass_atoms);
            });
  for (size_t i = 0; i + 1 < chain.size(); ++i) {
    if (!taxonomy.Entails_Subset(chain[i]->refclass_atoms,
                                 chain[i + 1]->refclass_atoms)) {
      return std::nullopt;
    }
  }
  // ψ1(c) must be known.
  AtomSet facts = FactsAbout(universe, kb, c, nullptr);
  if (!taxonomy.Entails_Subset(facts, chain[0]->refclass_atoms)) {
    return std::nullopt;
  }
  // ¬(||ψ1||_x ≈ 0) required (or assumed; see Options).
  if (!options_.assume_reference_classes_nonempty) {
    bool found = false;
    for (const auto& conjunct : kb.conjuncts) {
      if (conjunct->kind() != Formula::Kind::kNot) continue;
      auto bound = ParseBound(conjunct->body());
      if (!bound.has_value() || !bound->has_hi || bound->hi != 0.0) continue;
      if (bound->expr->kind() != Expr::Kind::kProportion) continue;
      auto atoms = CompileClass(universe, bound->expr->body(),
                                Term::Variable(bound->expr->vars()[0]));
      if (atoms.has_value() &&
          AtomSet::Equal(*atoms, chain[0]->refclass_atoms)) {
        found = true;
        break;
      }
    }
    if (!found) return std::nullopt;
  }

  // Strictly tightest interval [αj, βj]: for all i ≠ j, αi < αj < βj < βi.
  for (const Candidate* j : chain) {
    bool tightest = true;
    for (const Candidate* i : chain) {
      if (i == j) continue;
      if (!(i->stat->lo < j->stat->lo && j->stat->hi < i->stat->hi)) {
        tightest = false;
        break;
      }
    }
    if (!tightest) continue;
    SymbolicAnswer answer;
    answer.status = SymbolicAnswer::Status::kInterval;
    answer.lo = j->stat->lo;
    answer.hi = j->stat->hi;
    answer.rule = "Theorem 5.23 (strength rule)";
    answer.explanation =
        "tightest chain interval from " + logic::ToString(j->stat->refclass) +
        " gives " + IntervalString(answer.lo, answer.hi);
    return answer;
  }
  return std::nullopt;
}

// ---------------------------------------------------------------------------
// Theorem 5.26: essentially-disjoint competing classes (Dempster's rule).
// ---------------------------------------------------------------------------

std::optional<SymbolicAnswer> SymbolicEngine::TryDempster(
    const KbAnalysis& kb, const FormulaPtr& query) const {
  // Query must be P(c), P unary.
  if (query->kind() != Formula::Kind::kAtom || query->terms().size() != 1 ||
      !query->terms()[0]->is_constant()) {
    return std::nullopt;
  }
  const std::string& p_name = query->predicate();
  const std::string c = query->terms()[0]->name();

  ClassUniverse universe(UnaryPredicates(kb, query));
  if (universe.num_predicates() == 0) return std::nullopt;

  // Point-valued stats on P(x) with ψi(c) known.
  std::vector<Candidate> candidates = CandidatesFor(kb, query, universe);
  std::vector<const Candidate*> used;
  for (const auto& cand : candidates) {
    if (!cand.stat->is_point()) return std::nullopt;
    if (cand.constant != c) return std::nullopt;
    // P and c must not appear in ψi.
    std::set<std::string> ref_syms = logic::SymbolsOf(cand.stat->refclass);
    if (ref_syms.count(p_name) > 0 || ref_syms.count(c) > 0) {
      return std::nullopt;
    }
    used.push_back(&cand);
  }
  if (used.size() < 2) return std::nullopt;

  // Facts ψi(c) for each i, as explicit conjuncts.
  for (const Candidate* cand : used) {
    FormulaPtr fact = logic::SubstituteVariable(
        cand->stat->refclass, cand->var, Term::Constant(c));
    bool found = false;
    for (const auto& conjunct : kb.conjuncts) {
      if (Formula::StructuralEqual(conjunct, fact)) {
        found = true;
        break;
      }
    }
    if (!found) return std::nullopt;
  }

  // Pairwise ∃!x (ψi(x) ∧ ψj(x)) conjuncts.
  for (size_t i = 0; i < used.size(); ++i) {
    for (size_t j = i + 1; j < used.size(); ++j) {
      AtomSet expected = used[i]->refclass_atoms.Intersect(
          used[j]->refclass_atoms);
      bool found = false;
      for (const auto& conjunct : kb.conjuncts) {
        auto parts = MatchExistsUnique(conjunct);
        if (!parts.has_value()) continue;
        auto atoms = CompileClass(universe, parts->body,
                                  Term::Variable(parts->var));
        if (atoms.has_value() && AtomSet::Equal(*atoms, expected)) {
          found = true;
          break;
        }
      }
      if (!found) return std::nullopt;
    }
  }

  // Collect the αi and combine.
  std::vector<double> alphas;
  std::vector<int> tolerance_indices;
  for (const Candidate* cand : used) {
    alphas.push_back(cand->stat->lo);
    tolerance_indices.push_back(cand->stat->tolerance_lo);
  }
  bool any_one = false;
  bool any_zero = false;
  for (double a : alphas) {
    any_one = any_one || a >= 1.0;
    any_zero = any_zero || a <= 0.0;
  }
  SymbolicAnswer answer;
  if (any_one && any_zero) {
    // Conflicting hard defaults.  Equal strength (identical tolerance
    // subscripts, exactly two classes) resolves to 1/2; otherwise the limit
    // does not exist (Section 5.3).
    if (alphas.size() == 2 && tolerance_indices[0] == tolerance_indices[1]) {
      answer.status = SymbolicAnswer::Status::kInterval;
      answer.lo = answer.hi = 0.5;
      answer.rule = "Theorem 5.26 (equal-strength conflicting defaults)";
      answer.explanation = "conflicting defaults with equal tolerances";
      return answer;
    }
    answer.status = SymbolicAnswer::Status::kNonexistent;
    answer.rule = "Theorem 5.26 (conflicting defaults)";
    answer.explanation =
        "conflicting extreme defaults with independent tolerances: "
        "the limit depends on how ⃗τ → 0";
    return answer;
  }
  double combined = rwl::evidence::DempsterCombine(alphas);
  answer.status = SymbolicAnswer::Status::kInterval;
  answer.lo = answer.hi = combined;
  answer.rule = "Theorem 5.26 (Dempster combination)";
  std::ostringstream explain;
  explain << "combined " << alphas.size() << " competing classes: δ = "
          << combined;
  answer.explanation = explain.str();
  return answer;
}

// ---------------------------------------------------------------------------
// Theorem 5.27: vocabulary independence.
// ---------------------------------------------------------------------------

std::optional<SymbolicAnswer> SymbolicEngine::TryIndependence(
    const KbAnalysis& kb, const FormulaPtr& query, int depth) const {
  if (depth >= options_.max_recursion) return std::nullopt;
  if (query->kind() != Formula::Kind::kAnd) return std::nullopt;
  FormulaPtr q1 = query->left();
  FormulaPtr q2 = query->right();

  // The subvocabularies may share at most one constant c.
  std::set<std::string> s1 = logic::SymbolsOf(q1);
  std::set<std::string> s2 = logic::SymbolsOf(q2);

  // Grow each side's symbol set with the conjuncts it touches, to a fixed
  // point.
  std::vector<FormulaPtr> side1, side2;
  std::vector<std::set<std::string>> conjunct_syms;
  for (const auto& conjunct : kb.conjuncts) {
    conjunct_syms.push_back(logic::SymbolsOf(conjunct));
  }
  std::set<std::string> shared_allowed;
  {
    std::set<std::string> q1_consts = logic::ConstantsOf(q1);
    std::set<std::string> q2_consts = logic::ConstantsOf(q2);
    for (const auto& c : q1_consts) {
      if (q2_consts.count(c) > 0) shared_allowed.insert(c);
    }
    if (shared_allowed.size() > 1) return std::nullopt;
  }
  auto overlaps = [&](const std::set<std::string>& a,
                      const std::set<std::string>& b) {
    for (const auto& sym : a) {
      if (shared_allowed.count(sym) > 0) continue;
      if (b.count(sym) > 0) return true;
    }
    return false;
  };

  std::vector<int> assignment(kb.conjuncts.size(), 0);  // 0=unassigned
  bool changed = true;
  while (changed) {
    changed = false;
    for (size_t i = 0; i < kb.conjuncts.size(); ++i) {
      if (assignment[i] != 0) continue;
      bool in1 = overlaps(conjunct_syms[i], s1);
      bool in2 = overlaps(conjunct_syms[i], s2);
      if (in1 && in2) return std::nullopt;  // genuinely entangled
      if (in1 || in2) {
        assignment[i] = in1 ? 1 : 2;
        auto& target = in1 ? s1 : s2;
        for (const auto& sym : conjunct_syms[i]) {
          if (shared_allowed.count(sym) == 0) {
            if (target.insert(sym).second) changed = true;
          }
        }
      }
    }
  }
  // After the closure the two sides must still be disjoint (modulo c).
  if (overlaps(s1, s2)) return std::nullopt;

  for (size_t i = 0; i < kb.conjuncts.size(); ++i) {
    if (assignment[i] == 2) {
      side2.push_back(kb.conjuncts[i]);
    } else {
      side1.push_back(kb.conjuncts[i]);  // unassigned: harmless on side 1
    }
  }

  SymbolicAnswer a1 =
      InferAtDepth(Formula::AndAll(side1), q1, depth + 1);
  if (a1.status != SymbolicAnswer::Status::kInterval) return std::nullopt;
  SymbolicAnswer a2 =
      InferAtDepth(Formula::AndAll(side2), q2, depth + 1);
  if (a2.status != SymbolicAnswer::Status::kInterval) return std::nullopt;

  SymbolicAnswer answer;
  answer.status = SymbolicAnswer::Status::kInterval;
  answer.lo = a1.lo * a2.lo;
  answer.hi = a1.hi * a2.hi;
  answer.rule = "Theorem 5.27 (independence)";
  answer.explanation = "product of independent subqueries: [" +
                       IntervalString(a1.lo, a1.hi) + "] × [" +
                       IntervalString(a2.lo, a2.hi) + "]";
  return answer;
}

SymbolicAnswer SymbolicEngine::InferAtDepth(const FormulaPtr& kb,
                                            const FormulaPtr& query,
                                            int depth) const {
  return InferAnalyzed(AnalyzeKb(kb), query, depth);
}

SymbolicAnswer SymbolicEngine::InferAnalyzed(const KbAnalysis& analysis,
                                             const FormulaPtr& query,
                                             int depth) const {
  std::vector<SymbolicAnswer> answers;
  if (auto a = TryDirectInference(analysis, query)) answers.push_back(*a);
  if (auto a = TryMinimalReferenceClass(analysis, query)) {
    answers.push_back(*a);
  }
  if (auto a = TryStrengthRule(analysis, query)) answers.push_back(*a);
  if (auto a = TryDempster(analysis, query)) answers.push_back(*a);
  if (auto a = TryIndependence(analysis, query, depth)) answers.push_back(*a);

  for (const auto& a : answers) {
    if (a.status == SymbolicAnswer::Status::kNonexistent) return a;
  }
  SymbolicAnswer combined;
  bool first = true;
  for (const auto& a : answers) {
    if (a.status != SymbolicAnswer::Status::kInterval) continue;
    if (first) {
      combined = a;
      first = false;
      continue;
    }
    // Intersect the sound intervals; keep the rule names of both.
    double lo = std::max(combined.lo, a.lo);
    double hi = std::min(combined.hi, a.hi);
    if (lo <= hi) {
      combined.lo = lo;
      combined.hi = hi;
      combined.rule += " + " + a.rule;
      combined.explanation += "; " + a.explanation;
    }
  }
  if (first) {
    SymbolicAnswer none;
    none.status = SymbolicAnswer::Status::kInapplicable;
    none.explanation = "no theorem pattern matched";
    return none;
  }
  return combined;
}

SymbolicAnswer SymbolicEngine::Infer(const FormulaPtr& kb,
                                     const FormulaPtr& query) const {
  return InferAtDepth(kb, query, 0);
}

SymbolicAnswer SymbolicEngine::Infer(QueryContext& ctx,
                                     const FormulaPtr& query) const {
  std::string key = "symbolic.answer|nonempty=";
  key += options_.assume_reference_classes_nonempty ? '1' : '0';
  key += ";rec=" + std::to_string(options_.max_recursion);
  key += '|';
  key += std::to_string(query == nullptr ? 0 : query->id());
  auto cached =
      std::static_pointer_cast<const SymbolicAnswer>(ctx.LookupBlob(key));
  if (cached != nullptr) return *cached;
  SymbolicAnswer answer = InferAnalyzed(ctx.kb_analysis(), query, 0);
  ctx.StoreBlob(key, std::make_shared<SymbolicAnswer>(answer));
  return answer;
}

Capability SymbolicEngine::Assess(const QueryContext& ctx,
                                  const FormulaPtr& query) const {
  Capability cap = DescribeInstance(ctx.vocabulary(), query);
  cap.applicable = true;
  cap.reason = "theorem matchers cover the full language; a theorem may "
               "still fail to match this (KB, query) pair";
  return cap;
}

CostEstimate SymbolicEngine::EstimateCost(const QueryContext& ctx,
                                          const FormulaPtr& query) const {
  (void)query;
  const KbAnalysis& analysis = ctx.kb_analysis();
  CostEstimate cost;
  // Matching is a syntactic pass over the conjunct list per theorem, plus
  // class-algebra checks per statistical statement pair.
  const double conjuncts = static_cast<double>(analysis.conjuncts.size());
  const double stats = static_cast<double>(analysis.stats.size());
  cost.work = 8.0 * (conjuncts + stats * stats + 1.0);
  cost.error = 0.0;  // closed-form theorem output
  cost.basis = std::to_string(analysis.conjuncts.size()) + " conjuncts, " +
               std::to_string(analysis.stats.size()) +
               " statistical statements";
  return cost;
}

}  // namespace rwl::engines
