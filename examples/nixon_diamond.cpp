// The Nixon diamond (Section 5.3 / Theorem 5.26): conflicting evidence from
// essentially-disjoint reference classes, swept over evidence strengths,
// with the conflicting-defaults breakdown and its equal-strength resolution.
#include <cstdio>

#include "src/core/inference.h"
#include "src/core/knowledge_base.h"
#include "src/evidence/dempster.h"

namespace {

rwl::KnowledgeBase NixonKb(const char* alpha, const char* beta,
                           bool same_tolerance) {
  rwl::KnowledgeBase kb;
  char text[512];
  std::snprintf(text, sizeof(text),
                "#(Pacifist(x) ; Quaker(x))[x] ~=_1 %s\n"
                "#(Pacifist(x) ; Republican(x))[x] ~=_%d %s\n"
                "Quaker(Nixon)\nRepublican(Nixon)\n"
                "exists! x. (Quaker(x) & Republican(x))\n",
                alpha, same_tolerance ? 1 : 2, beta);
  kb.AddParsed(text);
  return kb;
}

}  // namespace

int main() {
  std::printf("Nixon is the only Quaker Republican.\n");
  std::printf("Pr(pacifist | α from Quakers, β from Republicans):\n\n");
  std::printf("  %-8s %-8s %-12s %-12s\n", "alpha", "beta", "rwl", "δ(α,β)");
  const char* values[] = {"0.8", "0.5", "0.2"};
  for (const char* a : values) {
    for (const char* b : values) {
      rwl::KnowledgeBase kb = NixonKb(a, b, false);
      rwl::Answer answer = rwl::DegreeOfBelief(kb, "Pacifist(Nixon)");
      double da = std::atof(a), db = std::atof(b);
      std::printf("  %-8s %-8s %-12.4f %-12.4f\n", a, b, answer.value,
                  rwl::evidence::DempsterCombine({da, db}));
    }
  }

  std::printf(
      "\nConflicting hard defaults (α=1, β=0, independent strengths):\n");
  rwl::Answer conflict =
      rwl::DegreeOfBelief(NixonKb("1", "0", false), "Pacifist(Nixon)");
  std::printf("  status: %s — %s\n",
              rwl::StatusToString(conflict.status).c_str(),
              conflict.explanation.c_str());

  std::printf("\nSame defaults declared with equal strength (shared ~=_1):\n");
  rwl::Answer equal =
      rwl::DegreeOfBelief(NixonKb("1", "0", true), "Pacifist(Nixon)");
  std::printf("  Pr = %.2f (the two extensions are equally likely)\n",
              equal.value);
  return 0;
}
