// Medical diagnosis: the paper's running hepatitis scenario (Sections 1, 2,
// 5.2) as a small decision-support tool.  Demonstrates direct inference,
// specificity, irrelevance to extra chart entries, and how degrees of
// belief feed an expected-utility treatment choice.
#include <cstdio>

#include "src/core/inference.h"
#include "src/core/knowledge_base.h"

int main() {
  using rwl::Answer;
  using rwl::DegreeOfBelief;
  using rwl::KnowledgeBase;

  // The hospital's statistical knowledge plus Eric's chart.
  KnowledgeBase kb;
  kb.AddParsed(
      // Statistics compiled from patient records:
      "#(Hep(x) ; Jaun(x))[x] ~=_1 0.8\n"           // jaundice → hepatitis
      "#(Hep(x) ; Jaun(x) & Fever(x))[x] ~=_2 1\n"  // with fever: near-certain
      "#(Hep(x))[x] <~_3 0.05\n"                    // base rate is low
      // Eric's chart:
      "Jaun(Eric)\n");

  std::printf("Chart: jaundice only\n");
  Answer hep = DegreeOfBelief(kb, "Hep(Eric)");
  std::printf("  Pr(hepatitis) = %.3f  via %s\n", hep.value,
              hep.method.c_str());

  // Irrelevant chart entries do not move the estimate (Theorem 5.16).
  kb.AddParsed("Tall(Eric)\nInsured(Eric)\n");
  Answer hep2 = DegreeOfBelief(kb, "Hep(Eric)");
  std::printf("Chart: + height, insurance status (irrelevant)\n");
  std::printf("  Pr(hepatitis) = %.3f  (unchanged)\n", hep2.value);

  // A new symptom activates the more specific reference class.
  kb.AddParsed("Fever(Eric)\n");
  Answer hep3 = DegreeOfBelief(kb, "Hep(Eric)");
  std::printf("Chart: + fever (specific class takes over)\n");
  std::printf("  Pr(hepatitis) = %.3f\n", hep3.value);

  // Expected-utility treatment choice (the paper's motivation: degrees of
  // belief exist to drive decisions).
  struct Treatment {
    const char* name;
    double utility_if_hep;
    double utility_if_not;
  };
  const Treatment treatments[] = {
      {"antivirals", 90.0, -10.0},
      {"watchful waiting", 20.0, 50.0},
  };
  double p = hep3.value;
  std::printf("\nExpected utilities at Pr(hep) = %.2f:\n", p);
  const Treatment* best = nullptr;
  double best_utility = -1e9;
  for (const auto& treatment : treatments) {
    double utility = p * treatment.utility_if_hep +
                     (1.0 - p) * treatment.utility_if_not;
    std::printf("  %-18s EU = %6.2f\n", treatment.name, utility);
    if (utility > best_utility) {
      best_utility = utility;
      best = &treatment;
    }
  }
  std::printf("Recommended action: %s\n", best->name);
  return 0;
}
