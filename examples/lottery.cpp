// The lottery paradox (Section 5.5): a probabilistic default reasoner can
// hold "this ticket will not win" for every ticket AND "some ticket wins"
// without contradiction.
#include <cstdio>

#include "src/core/knowledge_base.h"
#include "src/engines/profile_engine.h"
#include "src/logic/builder.h"
#include "src/logic/parser.h"

int main() {
  using namespace rwl::logic;  // NOLINT(build/namespaces) — example code

  rwl::logic::Vocabulary vocab;
  vocab.AddPredicate("Winner", 1);
  vocab.AddPredicate("Ticket", 1);
  vocab.AddConstant("Eric");

  // Exactly one winner; winners hold tickets; Eric holds a ticket.
  FormulaPtr kb = Formula::AndAll({
      ExistsUnique("w", P("Winner", V("w"))),
      Formula::ForAll("x", Formula::Implies(P("Winner", V("x")),
                                            P("Ticket", V("x")))),
      P("Ticket", C("Eric")),
  });

  rwl::engines::ProfileEngine engine;
  auto tol = rwl::semantics::ToleranceVector::Uniform(0.05);

  std::printf("Known lottery size K (domain N = 8):\n");
  for (int k : {2, 3, 4, 5}) {
    FormulaPtr sized =
        Formula::And(kb, ExactlyN(k, "t", P("Ticket", V("t"))));
    auto win = engine.DegreeAt(vocab, sized, P("Winner", C("Eric")), 8, tol);
    std::printf("  K=%d: Pr(Eric wins) = %.4f  (= 1/K)\n", k,
                win.probability);
  }

  std::printf("\n\"Large\" lottery (no size information):\n");
  for (int n : {8, 16, 32, 64}) {
    auto win = engine.DegreeAt(vocab, kb, P("Winner", C("Eric")), n, tol);
    auto someone = engine.DegreeAt(
        vocab, kb, Formula::Exists("x", P("Winner", V("x"))), n, tol);
    std::printf("  N=%-3d Pr(Eric wins) = %.4f   Pr(someone wins) = %.0f\n",
                n, win.probability, someone.probability);
  }
  std::printf(
      "\nThe default conclusion \"Eric will not win\" coexists with the\n"
      "certainty that someone wins — the paradox dissolves in degrees of\n"
      "belief (Section 5.5).\n");
  return 0;
}
