// Learning from samples (Section 7.3): the random-worlds prior cannot
// transfer a sample statistic to unsampled individuals; the
// random-propensities variant (BGHK92) can — and also overlearns.  This
// example contrasts the two priors side by side.
#include <cstdio>

#include "src/engines/profile_engine.h"
#include "src/logic/builder.h"

int main() {
  using namespace rwl::logic;  // NOLINT(build/namespaces) — example code

  Vocabulary vocab;
  vocab.AddPredicate("Fly", 1);
  vocab.AddPredicate("Bird", 1);
  vocab.AddPredicate("S", 1);  // membership in the observed sample
  vocab.AddConstant("Tweety");

  // A field study: 90% of the sampled birds fly; the sample is sizable.
  // Tweety is a bird that was not in the sample.
  FormulaPtr kb = Formula::AndAll({
      ApproxEq(CondProp(P("Fly", V("x")),
                        Formula::And(P("Bird", V("x")), P("S", V("x"))),
                        {"x"}),
               0.9, 1),
      ApproxGeq(Prop(Formula::And(P("Bird", V("x")), P("S", V("x"))), {"x"}),
                0.2, 2),
      P("Bird", C("Tweety")),
      Formula::Not(P("S", C("Tweety"))),
  });
  FormulaPtr query = P("Fly", C("Tweety"));
  auto tol = rwl::semantics::ToleranceVector::Uniform(0.05);

  rwl::engines::ProfileEngine random_worlds;
  rwl::engines::ProfileEngine::Options prop_options;
  prop_options.prior = rwl::engines::Prior::kRandomPropensities;
  rwl::engines::ProfileEngine propensities(prop_options);

  std::printf("90%% of sampled birds fly; Tweety was not sampled.\n");
  std::printf("Pr(Fly(Tweety)) by prior and domain size:\n");
  std::printf("  %-6s %-16s %-18s\n", "N", "random worlds",
              "random propensities");
  for (int n : {12, 16, 24, 32}) {
    auto rw = random_worlds.DegreeAt(vocab, kb, query, n, tol);
    auto rp = propensities.DegreeAt(vocab, kb, query, n, tol);
    std::printf("  %-6d %-16.4f %-18.4f\n", n, rw.probability,
                rp.probability);
  }
  std::printf(
      "\nRandom worlds treats unsampled birds as an unrelated population\n"
      "(stays at 1/2); random propensities learned the flying propensity\n"
      "from the sample (approaches 0.9).  The paper discusses why neither\n"
      "behavior is fully satisfactory (Section 7.3).\n");
  return 0;
}
