// Quickstart: build a knowledge base, ask for degrees of belief.
//
//   $ example_quickstart
//
// Shows the two ways to construct a KB (textual syntax and the builder
// DSL) and the anatomy of an Answer.
#include <cstdio>

#include "src/core/inference.h"
#include "src/core/knowledge_base.h"
#include "src/logic/builder.h"

int main() {
  using namespace rwl;            // NOLINT(build/namespaces) — example code
  using namespace rwl::logic;     // NOLINT(build/namespaces)

  // --- 1. A knowledge base in the textual syntax -------------------------
  //
  // "80% of patients with jaundice have hepatitis; Eric has jaundice."
  KnowledgeBase kb;
  std::string error;
  if (!kb.AddParsed("Jaun(Eric)\n"
                    "#(Hep(x) ; Jaun(x))[x] ~= 0.8\n",
                    &error)) {
    std::fprintf(stderr, "parse error: %s\n", error.c_str());
    return 1;
  }

  Answer answer = DegreeOfBelief(kb, "Hep(Eric)");
  std::printf("Pr(Hep(Eric) | KB) = %.3f   (method: %s)\n", answer.value,
              answer.method.c_str());

  // --- 2. The same KB through the builder DSL ----------------------------
  KnowledgeBase kb2;
  kb2.Add(P("Jaun", C("Eric")));
  kb2.Add(ApproxEq(CondProp(P("Hep", V("x")), P("Jaun", V("x")), {"x"}),
                   0.8));
  Answer answer2 = DegreeOfBelief(kb2, P("Hep", C("Eric")));
  std::printf("same via DSL        = %.3f\n", answer2.value);

  // --- 3. Defaults: "birds typically fly" --------------------------------
  KnowledgeBase birds;
  birds.Add(Default(P("Bird", V("x")), P("Fly", V("x")), {"x"}));
  birds.Add(P("Bird", C("Tweety")));
  Answer fly = DegreeOfBelief(birds, "Fly(Tweety)");
  std::printf("Pr(Fly(Tweety))     = %.3f   (defaults get degree 1)\n",
              fly.value);

  // --- 4. Answers can be intervals or fail gracefully --------------------
  KnowledgeBase chirps;
  chirps.AddParsed(
      "(0.7 <~_1 #(Chirps(x) ; Bird(x))[x]) & "
      "(#(Chirps(x) ; Bird(x))[x] <~_2 0.8)\n"
      "(0 <~_3 #(Chirps(x) ; Magpie(x))[x]) & "
      "(#(Chirps(x) ; Magpie(x))[x] <~_4 0.99)\n"
      "forall x. (Magpie(x) => Bird(x))\n"
      "Magpie(Tweety)\n");
  InferenceOptions symbolic_only;
  symbolic_only.use_profile = false;
  symbolic_only.use_maxent = false;
  symbolic_only.use_exact_fallback = false;
  Answer interval = DegreeOfBelief(chirps, "Chirps(Tweety)", symbolic_only);
  std::printf("Pr(Chirps(Tweety))  in [%.2f, %.2f]  (%s)\n", interval.lo,
              interval.hi, interval.method.c_str());
  return 0;
}
