// Taxonomy defaults: the Tweety corpus (Sections 3.3, 5.2) end to end —
// specificity, irrelevance, exceptional-subclass inheritance and the
// drowning problem, over an explicit animal taxonomy.
#include <cstdio>

#include "src/core/inference.h"
#include "src/core/knowledge_base.h"

namespace {

void Ask(const rwl::KnowledgeBase& kb, const char* query,
         const char* expectation) {
  rwl::Answer answer = rwl::DegreeOfBelief(kb, query);
  std::printf("  %-28s -> %-10.3f (%s)\n", query,
              answer.status == rwl::Answer::Status::kPoint ? answer.value
                                                           : answer.lo,
              expectation);
}

}  // namespace

int main() {
  rwl::KnowledgeBase kb;
  kb.AddParsed(
      // Defaults, statistically interpreted (Section 4.3):
      "#(Fly(x) ; Bird(x))[x] ~=_1 1\n"
      "#(Fly(x) ; Penguin(x))[x] ~=_2 0\n"
      "#(WarmBlooded(x) ; Bird(x))[x] ~=_3 1\n"
      "#(EasyToSee(x) ; Yellow(x))[x] ~=_4 1\n"
      // Hard taxonomy:
      "forall x. (Penguin(x) => Bird(x))\n"
      // The individual:
      "Penguin(Tweety)\n"
      "Yellow(Tweety)\n");

  std::printf("Tweety is a yellow penguin.\n");
  Ask(kb, "Fly(Tweety)", "specificity: penguins do not fly");
  Ask(kb, "WarmBlooded(Tweety)",
      "exceptional subclass still inherits from birds");
  Ask(kb, "EasyToSee(Tweety)", "drowning problem: yellowness still counts");

  // A second individual about whom we know only birdhood.
  kb.AddParsed("Bird(Chirpy)\n");
  std::printf("\nChirpy is just a bird.\n");
  Ask(kb, "Fly(Chirpy)", "plain birds fly by default");
  Ask(kb, "WarmBlooded(Chirpy)", "and are warm-blooded");
  return 0;
}
