// Side-by-side comparison of random worlds against the classical
// reference-class systems (Section 2): where they agree, where the
// baselines go vacuous, and where their commitments differ.
#include <cstdio>

#include "src/core/inference.h"
#include "src/core/knowledge_base.h"
#include "src/logic/parser.h"
#include "src/refclass/reference_class.h"

namespace {

void Compare(const char* label, const char* kb_text, const char* query_text) {
  rwl::KnowledgeBase kb;
  std::string error;
  if (!kb.AddParsed(kb_text, &error)) {
    std::fprintf(stderr, "parse error in %s: %s\n", label, error.c_str());
    return;
  }
  auto query = rwl::logic::ParseFormula(query_text).formula;

  rwl::refclass::RefClassAnswer reichenbach = rwl::refclass::Infer(
      kb.AsFormula(), query, rwl::refclass::Policy::kReichenbach);
  rwl::refclass::RefClassAnswer kyburg = rwl::refclass::Infer(
      kb.AsFormula(), query, rwl::refclass::Policy::kKyburgStrength);
  rwl::Answer rw = rwl::DegreeOfBelief(kb, query);

  auto ref_str = [](const rwl::refclass::RefClassAnswer& a) {
    char buf[64];
    switch (a.status) {
      case rwl::refclass::RefClassAnswer::Status::kInterval:
        std::snprintf(buf, sizeof(buf), "[%.2f, %.2f]", a.lo, a.hi);
        return std::string(buf);
      case rwl::refclass::RefClassAnswer::Status::kVacuous:
        return std::string("[0, 1]");
      default:
        return std::string("no class");
    }
  };

  std::printf("%s\n  query %s\n", label, query_text);
  std::printf("  Reichenbach:     %s\n", ref_str(reichenbach).c_str());
  std::printf("  Kyburg strength: %s\n", ref_str(kyburg).c_str());
  if (rw.status == rwl::Answer::Status::kPoint) {
    std::printf("  random worlds:   %.4f  (%s)\n\n", rw.value,
                rw.method.c_str());
  } else if (rw.status == rwl::Answer::Status::kInterval) {
    std::printf("  random worlds:   [%.2f, %.2f]  (%s)\n\n", rw.lo, rw.hi,
                rw.method.c_str());
  } else {
    std::printf("  random worlds:   %s\n\n",
                rwl::StatusToString(rw.status).c_str());
  }
}

}  // namespace

int main() {
  Compare("1. Textbook direct inference — everyone agrees",
          "Jaun(Eric)\n"
          "#(Hep(x) ; Jaun(x))[x] ~= 0.8\n",
          "Hep(Eric)");

  Compare("2. Specificity — everyone agrees",
          "#(Fly(x) ; Bird(x))[x] ~=_1 0.9\n"
          "#(Fly(x) ; Penguin(x))[x] ~=_2 0\n"
          "forall x. (Penguin(x) => Bird(x))\n"
          "Penguin(Tweety)\n",
          "Fly(Tweety)");

  Compare("3. Magpies (E5.24) — the strength rule matters",
          "(0.7 <~_1 #(Chirps(x) ; Bird(x))[x]) & "
          "(#(Chirps(x) ; Bird(x))[x] <~_2 0.8)\n"
          "(0 <~_3 #(Chirps(x) ; Magpie(x))[x]) & "
          "(#(Chirps(x) ; Magpie(x))[x] <~_4 0.99)\n"
          "forall x. (Magpie(x) => Bird(x))\n"
          "Magpie(Tweety)\n",
          "Chirps(Tweety)");

  Compare("4. Heart disease (§2.3) — baselines give up, random worlds "
          "combines the evidence",
          "#(Heart(x) ; Chol(x))[x] ~=_1 0.15\n"
          "#(Heart(x) ; Smoker(x))[x] ~=_2 0.09\n"
          "Chol(Fred)\nSmoker(Fred)\n",
          "Heart(Fred)");

  Compare("5. Nixon diamond (T5.26) — incomparable classes, quantitative "
          "combination",
          "#(Pacifist(x) ; Quaker(x))[x] ~=_1 0.8\n"
          "#(Pacifist(x) ; Republican(x))[x] ~=_2 0.8\n"
          "Quaker(Nixon)\nRepublican(Nixon)\n"
          "exists! x. (Quaker(x) & Republican(x))\n",
          "Pacifist(Nixon)");
  return 0;
}
