// rwlq — command-line degrees of belief.
//
// Usage:
//   rwlq <kb-file> <query> [<query> ...]
//   rwlq --kb '<inline kb text>' <query> ...
//
// The KB file uses the textual L≈ syntax, one sentence per line, with //
// comments (see README.md).  Each query is parsed, inferred and reported
// with the method that produced the answer.
//
// Options:
//   --kb TEXT        inline KB instead of a file
//   --nmax N         largest domain size for numeric sweeps (default 48)
//   --tol T          base tolerance (default 0.04)
//   --no-symbolic    disable the theorem engine (numeric only)
//   --series         print the (N, τ, Pr) convergence series
//   --json           one JSON object per query on stdout
//   --fixed-n N      known domain size: compute Pr_N directly (footnote 9)
//   --threads N      worker pool for the (N, τ) sweep grid (0 = all cores)
//   --no-cache       disable the shared QueryContext caches (debugging)
//   --rate-exit      rate-aware early exit in the N-sweep (skip the largest
//                    N points once successive degrees contract within the
//                    convergence tolerance)
//
// Multiple queries are answered as one batch over a shared QueryContext:
// the KB analyses and per-(N, τ) world enumerations run once, duplicate
// queries are deduplicated, and answers print in argument order.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "src/core/inference.h"
#include "src/core/knowledge_base.h"
#include "src/logic/parser.h"

namespace {

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s (<kb-file> | --kb TEXT) [options] <query>...\n"
               "options: --nmax N  --tol T  --no-symbolic  --series\n"
               "         --json  --fixed-n N  --threads N  --no-cache\n"
               "         --rate-exit\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string kb_text;
  bool have_kb = false;
  std::vector<std::string> queries;
  rwl::InferenceOptions options;
  options.tolerances = rwl::semantics::ToleranceVector::Uniform(0.04);
  int nmax = 48;
  bool print_series = false;
  bool json = false;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--kb") {
      if (++i >= argc) return Usage(argv[0]);
      kb_text = argv[i];
      have_kb = true;
    } else if (arg == "--nmax") {
      if (++i >= argc) return Usage(argv[0]);
      nmax = std::atoi(argv[i]);
    } else if (arg == "--tol") {
      if (++i >= argc) return Usage(argv[0]);
      options.tolerances =
          rwl::semantics::ToleranceVector::Uniform(std::atof(argv[i]));
    } else if (arg == "--no-symbolic") {
      options.use_symbolic = false;
    } else if (arg == "--series") {
      print_series = true;
    } else if (arg == "--json") {
      json = true;
    } else if (arg == "--fixed-n") {
      if (++i >= argc) return Usage(argv[0]);
      options.fixed_domain_size = std::atoi(argv[i]);
    } else if (arg == "--threads") {
      if (++i >= argc) return Usage(argv[0]);
      options.limit.num_threads = std::atoi(argv[i]);
    } else if (arg == "--no-cache") {
      options.enable_caching = false;
    } else if (arg == "--rate-exit") {
      options.limit.rate_aware_early_exit = true;
    } else if (!have_kb) {
      std::ifstream file(arg);
      if (!file) {
        std::fprintf(stderr, "rwlq: cannot open KB file '%s'\n",
                     arg.c_str());
        return 2;
      }
      std::ostringstream buffer;
      buffer << file.rdbuf();
      kb_text = buffer.str();
      have_kb = true;
    } else {
      queries.push_back(arg);
    }
  }
  if (!have_kb || queries.empty()) return Usage(argv[0]);

  // Sweep schedule up to nmax.
  options.limit.domain_sizes.clear();
  for (int n = 8; n <= nmax; n = n < 16 ? n + 8 : n * 2) {
    options.limit.domain_sizes.push_back(n);
  }
  if (options.limit.domain_sizes.empty() ||
      options.limit.domain_sizes.back() != nmax) {
    options.limit.domain_sizes.push_back(nmax);
  }

  rwl::KnowledgeBase kb;
  std::string error;
  if (!kb.AddParsed(kb_text, &error)) {
    std::fprintf(stderr, "rwlq: KB parse error: %s\n", error.c_str());
    return 1;
  }

  // Parse everything up front, then answer the parsed queries as one batch
  // over a shared QueryContext (deduplicated; per-(N, τ) work runs once).
  int failures = 0;
  std::vector<rwl::logic::FormulaPtr> parsed_queries(queries.size());
  std::vector<rwl::logic::FormulaPtr> valid;
  for (size_t i = 0; i < queries.size(); ++i) {
    rwl::logic::ParseResult parsed = rwl::logic::ParseFormula(queries[i]);
    if (!parsed.ok()) {
      std::fprintf(stderr, "rwlq: query parse error in '%s': %s\n",
                   queries[i].c_str(), parsed.error.c_str());
      ++failures;
      continue;
    }
    parsed_queries[i] = parsed.formula;
    valid.push_back(parsed.formula);
  }
  std::vector<rwl::Answer> answers = rwl::DegreesOfBelief(kb, valid, options);

  size_t next_answer = 0;
  for (size_t i = 0; i < queries.size(); ++i) {
    if (parsed_queries[i] == nullptr) continue;
    const std::string& query_text = queries[i];
    rwl::Answer answer = std::move(answers[next_answer++]);
    if (json) {
      // Minimal hand-rolled JSON: all emitted strings are library-internal
      // (status/method names) except the query, which we escape.
      std::string escaped;
      for (char c : query_text) {
        if (c == '"' || c == '\\') escaped += '\\';
        escaped += c;
      }
      std::printf("{\"query\": \"%s\", \"status\": \"%s\"", escaped.c_str(),
                  rwl::StatusToString(answer.status).c_str());
      if (answer.status == rwl::Answer::Status::kPoint) {
        std::printf(", \"value\": %.9f", answer.value);
      } else if (answer.status == rwl::Answer::Status::kInterval) {
        std::printf(", \"lo\": %.9f, \"hi\": %.9f", answer.lo, answer.hi);
      }
      std::printf(", \"method\": \"%s\", \"converged\": %s}\n",
                  answer.method.c_str(),
                  answer.converged ? "true" : "false");
      if (answer.status == rwl::Answer::Status::kUnknown) ++failures;
      continue;
    }
    switch (answer.status) {
      case rwl::Answer::Status::kPoint:
        std::printf("%s  =  %.6f", query_text.c_str(), answer.value);
        break;
      case rwl::Answer::Status::kInterval:
        std::printf("%s  in  [%.6f, %.6f]", query_text.c_str(), answer.lo,
                    answer.hi);
        break;
      case rwl::Answer::Status::kNonexistent:
        std::printf("%s  :  limit does not exist (%s)", query_text.c_str(),
                    answer.explanation.c_str());
        break;
      case rwl::Answer::Status::kUndefined:
        std::printf("%s  :  undefined — the KB has no worlds",
                    query_text.c_str());
        break;
      case rwl::Answer::Status::kUnknown:
        std::printf("%s  :  no engine applies (%s)", query_text.c_str(),
                    answer.explanation.c_str());
        ++failures;
        break;
    }
    if (!answer.method.empty()) {
      std::printf("   [%s%s]", answer.method.c_str(),
                  answer.converged ? "" : ", not converged");
    }
    std::printf("\n");
    if (print_series) {
      for (const auto& point : answer.series) {
        std::printf("    N=%-5d tau_scale=%-6.3f Pr=%.6f%s\n",
                    point.domain_size, point.tolerance_scale,
                    point.probability,
                    point.well_defined ? "" : "  (undefined)");
      }
    }
  }
  return failures == 0 ? 0 : 1;
}
