// rwlq — command-line degrees of belief.
//
// Usage:
//   rwlq <kb-file> <query> [<query> ...]
//   rwlq --kb '<inline kb text>' <query> ...
//
// The KB file uses the textual L≈ syntax, one sentence per line, with //
// comments (see README.md).  Each query is parsed, inferred and reported
// with the method that produced the answer.
//
// Options:
//   --kb TEXT        inline KB instead of a file
//   --nmax N         largest domain size for numeric sweeps (default 48)
//   --tol T          base tolerance (default 0.04)
//   --no-symbolic    disable the theorem engine (numeric only)
//   --series         print the (N, τ, Pr) convergence series
//   --json           one JSON object per query on stdout
//   --fixed-n N      known domain size: compute Pr_N directly (footnote 9)
//   --threads N      worker pool for the (N, τ) sweep grid (0 = all cores)
//   --no-cache       disable the shared QueryContext caches (debugging)
//   --rate-exit      rate-aware early exit in the N-sweep (skip the largest
//                    N points once successive degrees contract within the
//                    convergence tolerance)
//   --explain        print the planner's plan trace per query (strategies
//                    assessed/tried, predicted vs observed costs, skips);
//                    with --json, adds a "plan" object per query
//   --engine NAME    force a single strategy, bypassing the planner
//                    (fixed-n, calibrated, symbolic, profile,
//                    epsilon_semantics, klm, gmp90, evidence, maxent,
//                    exact, montecarlo)
//   --interval CONF  calibrated-interval mode: report an order-statistic
//                    interval that covers a 1-CONF-trimmed share of the
//                    sweep series (confidence in (0,1); 0 disables)
//   --list-engines   print each engine's name, result class and
//                    capability on the loaded KB, then exit
//   --plan MODE      candidate order: fidelity (paper preference, the
//                    default) or cost (cheapest predicted engine first)
//   --deadline-ms D  per-query wall-clock deadline (engines stop between
//                    probes; overshoot is at most one probe)
//   --budget W       per-candidate predicted-work budget (abstract engine
//                    work units; over-budget candidates are skipped)
//   --montecarlo     enable the opt-in Monte-Carlo sweep as a candidate
//
// Multiple queries are answered as one batch over a shared QueryContext:
// the KB analyses and per-(N, τ) world enumerations run once, duplicate
// queries are deduplicated, repeated query shapes reuse cached plans, and
// answers print in argument order.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "src/core/engine_registry.h"
#include "src/core/inference.h"
#include "src/core/knowledge_base.h"
#include "src/core/planner.h"
#include "src/logic/parser.h"

namespace {

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s (<kb-file> | --kb TEXT) [options] <query>...\n"
               "options: --nmax N  --tol T  --no-symbolic  --series\n"
               "         --json  --fixed-n N  --threads N  --no-cache\n"
               "         --rate-exit  --explain  --engine NAME\n"
               "         --interval CONF\n"
               "         --list-engines  --plan fidelity|cost\n"
               "         --deadline-ms D  --budget W  --montecarlo\n",
               argv0);
  return 2;
}

const char* ResultClassName(rwl::engines::ResultClass result_class) {
  return result_class == rwl::engines::ResultClass::kStatistical
             ? "statistical"
             : "deterministic";
}

// --list-engines: every registered strategy's identity and capability on
// the loaded KB (probed with the trivial query ⊤ — capability is a
// (KB, vocabulary) property for every engine except the theorem matchers,
// which accept the full language anyway).
int ListEngines(const rwl::KnowledgeBase& kb,
                const rwl::InferenceOptions& options) {
  rwl::QueryContext ctx = rwl::MakeQueryContext(
      kb, std::span<const rwl::logic::FormulaPtr>(), options);
  std::printf("%-11s %-14s %-11s %s\n", "engine", "class", "applicable",
              "capability on this KB");
  for (const auto& strategy : rwl::EngineRegistry::Default().Ordered()) {
    rwl::engines::Capability cap =
        strategy->Assess(ctx, rwl::logic::Formula::True(), options);
    std::string detail = cap.reason;
    if (cap.applicable) {
      rwl::engines::CostEstimate cost =
          strategy->EstimateCost(ctx, rwl::logic::Formula::True(), options);
      char buf[96];
      std::snprintf(buf, sizeof(buf), "; predicted work=%.3g", cost.work);
      detail += buf;
    }
    std::printf("%-11s %-14s %-11s %s\n", strategy->name().c_str(),
                ResultClassName(strategy->result_class()),
                cap.applicable ? "yes" : "no", detail.c_str());
  }
  std::printf(
      "(vocabulary: max arity %d, %d constants%s)\n",
      rwl::engines::DescribeInstance(ctx.vocabulary(), nullptr)
          .max_predicate_arity,
      static_cast<int>(ctx.vocabulary().Constants().size()),
      ctx.vocabulary().IsUnaryRelational() ? ", unary fragment" : "");
  return 0;
}

const char* StepActionName(rwl::PlanStep::Action action) {
  switch (action) {
    case rwl::PlanStep::Action::kRan:
      return "ran";
    case rwl::PlanStep::Action::kSkippedInapplicable:
      return "inapplicable";
    case rwl::PlanStep::Action::kSkippedBudget:
      return "over-budget";
    case rwl::PlanStep::Action::kSkippedDeadline:
      return "deadline";
    case rwl::PlanStep::Action::kNotReached:
      return "not-reached";
  }
  return "?";
}

// Backslash-escapes quotes/backslashes and hides control bytes; the mode
// string embeds the user-supplied --engine name, so it cannot be printed
// verbatim into JSON.
std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    if (static_cast<unsigned char>(c) < 0x20) {
      out += ' ';
      continue;
    }
    out += c;
  }
  return out;
}

void PrintPlanJson(const rwl::PlanTrace& trace) {
  std::printf(", \"plan\": {\"mode\": \"%s\", \"cache\": %s, "
              "\"deadline_hit\": %s, \"planning_ms\": %.3f, "
              "\"total_ms\": %.3f, \"steps\": [",
              JsonEscape(trace.mode).c_str(),
              trace.from_cache ? "true" : "false",
              trace.deadline_hit ? "true" : "false", trace.planning_ms,
              trace.total_ms);
  for (size_t i = 0; i < trace.steps.size(); ++i) {
    const rwl::PlanStep& step = trace.steps[i];
    std::printf("%s{\"strategy\": \"%s\", \"action\": \"%s\"",
                i > 0 ? ", " : "", JsonEscape(step.strategy).c_str(),
                StepActionName(step.action));
    if (step.action == rwl::PlanStep::Action::kRan) {
      std::printf(", \"outcome\": \"%s\", \"observed_ms\": %.3f",
                  JsonEscape(step.outcome).c_str(), step.observed_ms);
    }
    if (step.capability.applicable) {
      std::printf(", \"predicted_work\": %.6g, \"predicted_error\": %.6g",
                  step.predicted.work, step.predicted.error);
    }
    std::printf("}");
  }
  std::printf("]}");
}

}  // namespace

int main(int argc, char** argv) {
  std::string kb_text;
  bool have_kb = false;
  std::vector<std::string> queries;
  rwl::InferenceOptions options;
  options.tolerances = rwl::semantics::ToleranceVector::Uniform(0.04);
  int nmax = 48;
  bool print_series = false;
  bool json = false;
  bool explain = false;
  bool list_engines = false;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--kb") {
      if (++i >= argc) return Usage(argv[0]);
      kb_text = argv[i];
      have_kb = true;
    } else if (arg == "--nmax") {
      if (++i >= argc) return Usage(argv[0]);
      nmax = std::atoi(argv[i]);
    } else if (arg == "--tol") {
      if (++i >= argc) return Usage(argv[0]);
      options.tolerances =
          rwl::semantics::ToleranceVector::Uniform(std::atof(argv[i]));
    } else if (arg == "--no-symbolic") {
      options.use_symbolic = false;
    } else if (arg == "--series") {
      print_series = true;
    } else if (arg == "--json") {
      json = true;
    } else if (arg == "--fixed-n") {
      if (++i >= argc) return Usage(argv[0]);
      options.fixed_domain_size = std::atoi(argv[i]);
    } else if (arg == "--threads") {
      if (++i >= argc) return Usage(argv[0]);
      options.limit.num_threads = std::atoi(argv[i]);
    } else if (arg == "--no-cache") {
      options.enable_caching = false;
    } else if (arg == "--rate-exit") {
      options.limit.rate_aware_early_exit = true;
    } else if (arg == "--explain") {
      explain = true;
    } else if (arg == "--engine") {
      if (++i >= argc) return Usage(argv[0]);
      options.force_engine = argv[i];
    } else if (arg == "--interval") {
      if (++i >= argc) return Usage(argv[0]);
      double conf = std::atof(argv[i]);
      if (!(conf > 0.0 && conf < 1.0)) {
        std::fprintf(stderr, "rwlq: --interval wants a confidence in (0,1)\n");
        return 2;
      }
      options.interval_confidence = conf;
    } else if (arg == "--list-engines") {
      list_engines = true;
    } else if (arg == "--plan") {
      if (++i >= argc) return Usage(argv[0]);
      std::string mode = argv[i];
      if (mode == "fidelity") {
        options.plan_mode = rwl::PlanMode::kFidelity;
      } else if (mode == "cost") {
        options.plan_mode = rwl::PlanMode::kMinCost;
      } else {
        return Usage(argv[0]);
      }
    } else if (arg == "--deadline-ms") {
      if (++i >= argc) return Usage(argv[0]);
      options.deadline_ms = std::atof(argv[i]);
    } else if (arg == "--budget") {
      if (++i >= argc) return Usage(argv[0]);
      options.work_budget = std::atof(argv[i]);
    } else if (arg == "--montecarlo") {
      options.use_montecarlo = true;
    } else if (!have_kb) {
      std::ifstream file(arg);
      if (!file) {
        std::fprintf(stderr, "rwlq: cannot open KB file '%s'\n",
                     arg.c_str());
        return 2;
      }
      std::ostringstream buffer;
      buffer << file.rdbuf();
      kb_text = buffer.str();
      have_kb = true;
    } else {
      queries.push_back(arg);
    }
  }
  if (!have_kb || (queries.empty() && !list_engines)) return Usage(argv[0]);

  // Sweep schedule up to nmax.
  options.limit.domain_sizes.clear();
  for (int n = 8; n <= nmax; n = n < 16 ? n + 8 : n * 2) {
    options.limit.domain_sizes.push_back(n);
  }
  if (options.limit.domain_sizes.empty() ||
      options.limit.domain_sizes.back() != nmax) {
    options.limit.domain_sizes.push_back(nmax);
  }

  rwl::KnowledgeBase kb;
  std::string error;
  if (!kb.AddParsed(kb_text, &error)) {
    std::fprintf(stderr, "rwlq: KB parse error: %s\n", error.c_str());
    return 1;
  }

  if (list_engines) return ListEngines(kb, options);

  // Parse everything up front, then answer the parsed queries as one batch
  // over a shared QueryContext (deduplicated; per-(N, τ) work runs once).
  int failures = 0;
  std::vector<rwl::logic::FormulaPtr> parsed_queries(queries.size());
  std::vector<rwl::logic::FormulaPtr> valid;
  for (size_t i = 0; i < queries.size(); ++i) {
    rwl::logic::ParseResult parsed = rwl::logic::ParseFormula(queries[i]);
    if (!parsed.ok()) {
      std::fprintf(stderr, "rwlq: query parse error in '%s': %s\n",
                   queries[i].c_str(), parsed.error.c_str());
      ++failures;
      continue;
    }
    parsed_queries[i] = parsed.formula;
    valid.push_back(parsed.formula);
  }
  std::vector<rwl::Answer> answers = rwl::DegreesOfBelief(kb, valid, options);

  size_t next_answer = 0;
  for (size_t i = 0; i < queries.size(); ++i) {
    if (parsed_queries[i] == nullptr) continue;
    const std::string& query_text = queries[i];
    rwl::Answer answer = std::move(answers[next_answer++]);
    if (json) {
      // Minimal hand-rolled JSON: all emitted strings are library-internal
      // (status/method names) except the query, which we escape.
      std::string escaped;
      for (char c : query_text) {
        if (c == '"' || c == '\\') escaped += '\\';
        escaped += c;
      }
      std::printf("{\"query\": \"%s\", \"status\": \"%s\"", escaped.c_str(),
                  rwl::StatusToString(answer.status).c_str());
      if (answer.status == rwl::Answer::Status::kPoint) {
        std::printf(", \"value\": %.9f", answer.value);
      } else if (answer.status == rwl::Answer::Status::kInterval) {
        std::printf(", \"lo\": %.9f, \"hi\": %.9f", answer.lo, answer.hi);
      }
      std::printf(", \"method\": \"%s\", \"converged\": %s",
                  answer.method.c_str(),
                  answer.converged ? "true" : "false");
      if (explain && answer.plan != nullptr) PrintPlanJson(*answer.plan);
      std::printf("}\n");
      if (answer.status == rwl::Answer::Status::kUnknown) ++failures;
      continue;
    }
    switch (answer.status) {
      case rwl::Answer::Status::kPoint:
        std::printf("%s  =  %.6f", query_text.c_str(), answer.value);
        break;
      case rwl::Answer::Status::kInterval:
        std::printf("%s  in  [%.6f, %.6f]", query_text.c_str(), answer.lo,
                    answer.hi);
        break;
      case rwl::Answer::Status::kNonexistent:
        std::printf("%s  :  limit does not exist (%s)", query_text.c_str(),
                    answer.explanation.c_str());
        break;
      case rwl::Answer::Status::kUndefined:
        std::printf("%s  :  undefined — the KB has no worlds",
                    query_text.c_str());
        break;
      case rwl::Answer::Status::kUnknown:
        std::printf("%s  :  no engine applies (%s)", query_text.c_str(),
                    answer.explanation.c_str());
        ++failures;
        break;
    }
    if (!answer.method.empty()) {
      std::printf("   [%s%s]", answer.method.c_str(),
                  answer.converged ? "" : ", not converged");
    }
    std::printf("\n");
    if (print_series) {
      for (const auto& point : answer.series) {
        std::printf("    N=%-5d tau_scale=%-6.3f Pr=%.6f%s\n",
                    point.domain_size, point.tolerance_scale,
                    point.probability,
                    point.well_defined ? "" : "  (undefined)");
      }
    }
    if (explain && answer.plan != nullptr) {
      std::printf("%s", rwl::FormatPlanTrace(*answer.plan).c_str());
    }
  }
  return failures == 0 ? 0 : 1;
}
