#!/usr/bin/env python3
"""Perf regression gate over BENCH_*.json line files.

Compares one numeric field across benchmark rows (matched by their "id")
between a checked-in baseline and the current run:

    bench_gate.py --baseline bench/baselines/BENCH_eval.json \
                  --current bench-json/BENCH_eval.json \
                  --field vm_ns_per_eval --max-ratio 1.5

Fails (exit 1) when any row regresses more than --max-ratio over the
baseline, or when a baseline row with the field is missing from the current
run (a silently dropped benchmark is a coverage regression, not a perf
win).  Rows present only in the current run are reported as new; they pass,
and should be added to the baseline in the same change that introduces
them.  Both files hold one JSON object per line (the BENCH_JSON format of
bench/bench_util.h).
"""

import argparse
import json
import sys


def load_rows(path, field):
    rows = {}
    with open(path, "r", encoding="utf-8") as f:
        for line_no, line in enumerate(f, 1):
            line = line.strip()
            if not line:
                continue
            try:
                row = json.loads(line)
            except json.JSONDecodeError as e:
                raise SystemExit(f"{path}:{line_no}: bad JSON: {e}")
            if not isinstance(row, dict) or "id" not in row:
                continue
            if field in row and isinstance(row[field], (int, float)):
                rows[row["id"]] = float(row[field])
    return rows


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", required=True)
    parser.add_argument("--current", required=True)
    parser.add_argument("--field", required=True)
    parser.add_argument("--max-ratio", type=float, default=1.5)
    args = parser.parse_args()

    baseline = load_rows(args.baseline, args.field)
    current = load_rows(args.current, args.field)
    if not baseline:
        raise SystemExit(
            f"no baseline rows with field '{args.field}' in {args.baseline}")

    failures = []
    for row_id, base_value in sorted(baseline.items()):
        if row_id not in current:
            failures.append(f"{row_id}: missing from current run")
            continue
        value = current[row_id]
        ratio = value / base_value if base_value > 0 else float("inf")
        status = "FAIL" if ratio > args.max_ratio else "ok"
        print(f"{status:4} {row_id}: {args.field} {base_value:.1f} -> "
              f"{value:.1f} ({ratio:.2f}x, limit {args.max_ratio:.2f}x)")
        if ratio > args.max_ratio:
            failures.append(
                f"{row_id}: {ratio:.2f}x > {args.max_ratio:.2f}x")
    for row_id in sorted(set(current) - set(baseline)):
        print(f"new  {row_id}: {args.field} {current[row_id]:.1f} "
              f"(no baseline; add it to {args.baseline})")

    if failures:
        print(f"\nbench_gate: {len(failures)} regression(s):", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    print(f"\nbench_gate: {len(baseline)} row(s) within "
          f"{args.max_ratio:.2f}x")
    return 0


if __name__ == "__main__":
    sys.exit(main())
