// rwlload — load generator and latency harness for the rwld service.
//
// Drives N client threads against the service and reports throughput and
// latency percentiles, writing machine-readable rows to BENCH_service.json
// (same BENCH_JSON line format as the bench/ suite).
//
// Workload: the paper-KB corpus (src/fixtures/paper_kbs.h) — every worked
// example becomes a tenant KB, loaded with its query-only constants
// declared, and the clients round-robin the example queries across
// tenants.  Two timed phases:
//
//   readonly — pure QUERY traffic on warmed caches (the headline
//              queries/s number: plan-cache + finite-memo replay);
//   mixed    — every --mutate-every'th request toggles an ASSERT/RETRACT
//              on the tenant, exercising copy-on-write snapshots and
//              selective cache invalidation under load.
//
// Modes:
//   (default)        in-process: a KbService in this process (measures the
//                    catalog + scheduler + engines, no socket overhead)
//   --connect PORT   NDJSON over TCP against a running `rwld --port PORT`
//                    (measures the full daemon round trip; one connection
//                    per client thread)
//
// Options:
//   --threads N       client threads (default 16)
//   --seconds S       timed seconds per phase (default 3)
//   --server-threads  scheduler workers for in-process mode (default: hw)
//   --mutate-every K  mixed-phase mutation period (default 64; 0 disables
//                     the mixed phase)
//   --nmax N          sweep domain cap (default 32)
//   --json-out PATH   where the JSON rows go (default BENCH_service.json)
//   --min-qps Q       exit nonzero when readonly qps < Q (CI gate)
//   --mixed-min-qps Q exit nonzero when mixed qps < Q (CI gate)
//   --mixed-max-p999-us U
//                     exit nonzero when mixed query p99.9 > U µs (CI gate
//                     for the incremental-maintenance path: mutations must
//                     not stall the query tail)
//   --mut-max-p99-us U
//                     exit nonzero when mixed MUTATION p99 > U µs (CI gate
//                     for the WAL-fsync ack path: acks must not wait on
//                     maintenance builds)
//   --wal-dir DIR     in-process mode only: run the service with a WAL so
//                     the measured mutation ack includes the fsync
//   --replica PORT    with --connect: after every mutation ack, time a
//                     min_version read-your-writes query against the
//                     replica rwld at 127.0.0.1:PORT (replica lag)
//   --replica-max-lag-p99-us U
//                     exit nonzero when replica lag p99 > U µs (CI gate)
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "src/fixtures/paper_kbs.h"
#include "src/service/protocol.h"
#include "src/service/service.h"

namespace {

using Clock = std::chrono::steady_clock;
using rwl::service::KbService;

struct Config {
  int threads = 16;
  double seconds = 3.0;
  int server_threads = 0;
  int mutate_every = 64;
  int nmax = 32;
  int connect_port = 0;
  std::string json_out = "BENCH_service.json";
  std::string wal_dir;
  int replica_port = 0;
  double min_qps = 0.0;
  double mixed_min_qps = 0.0;
  double mixed_max_p999_us = 0.0;
  double mut_max_p99_us = 0.0;
  double replica_max_lag_p99_us = 0.0;
};

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--threads N] [--seconds S] [--server-threads M]\n"
               "          [--mutate-every K] [--nmax N] [--connect PORT]\n"
               "          [--json-out PATH] [--min-qps Q]\n"
               "          [--mixed-min-qps Q] [--mixed-max-p999-us U]\n"
               "          [--mut-max-p99-us U] [--wal-dir DIR]\n"
               "          [--replica PORT] [--replica-max-lag-p99-us U]\n",
               argv0);
  return 2;
}

// One (tenant, query) work item.  `marker` is the tenant's mixed-phase
// toggle fact: the tenant's first unary predicate applied to a
// load-generator-private constant.  Asserting it forces the full
// copy-on-write path — a new version, cache adoption, a version-salt
// change — while growing the world space only linearly (a fresh
// PREDICATE would double the profile engine's atom classes and turn the
// first post-mutation sweep into seconds of recompute); the retract leg
// restores the previous KB formula, whose adopted caches become valid
// hits again.  Empty when the tenant has no unary predicate (no
// mutations for it).
struct WorkItem {
  std::string kb;
  std::string query;
  std::string marker;
};

// ---- client transports ----

// Abstracts "send one query, get one answer" so the measurement loop is
// transport-independent.
class Client {
 public:
  virtual ~Client() = default;
  virtual bool Query(const WorkItem& item) = 0;          // true = ok answer
  // On success *version (optional) is the acked version — the primary
  // version a replica-lag probe hands to QueryMinVersion.
  virtual bool Mutate(const WorkItem& item, bool assert_phase,
                      uint64_t* version = nullptr) = 0;
  // Query with a read-your-writes floor (replica probes: min_version is
  // a PRIMARY version when aimed at a --replica-of daemon).
  virtual bool QueryMinVersion(const WorkItem& item, uint64_t min_version) = 0;
  // Block until the daemon holds min_version (WAIT op) without running a
  // query — the timed replica-lag probe, free of tenant query cost.
  virtual bool WaitVersion(const WorkItem& item, uint64_t min_version) = 0;
};

class InProcessClient : public Client {
 public:
  explicit InProcessClient(KbService* service) : service_(service) {}

  bool Query(const WorkItem& item) override {
    KbService::QueryResult result = service_->Query(item.kb, item.query);
    return result.ok;
  }

  bool Mutate(const WorkItem& item, bool assert_phase,
              uint64_t* version) override {
    KbService::MutationResult result =
        assert_phase ? service_->Assert(item.kb, item.marker)
                     : service_->Retract(item.kb, item.marker);
    if (result.ok && version != nullptr) *version = result.version;
    return result.ok;
  }

  bool QueryMinVersion(const WorkItem& item, uint64_t min_version) override {
    rwl::service::RequestOptions request;
    request.min_version = min_version;
    return service_->Query(item.kb, item.query, request).ok;
  }

  bool WaitVersion(const WorkItem& item, uint64_t min_version) override {
    return service_->WaitForVersion(item.kb, min_version, 30000.0);
  }

 private:
  KbService* service_;
};

class TcpClient : public Client {
 public:
  static std::unique_ptr<TcpClient> Connect(int port) {
    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) return nullptr;
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = ::htonl(INADDR_LOOPBACK);
    addr.sin_port = ::htons(static_cast<uint16_t>(port));
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
        0) {
      ::close(fd);
      return nullptr;
    }
    return std::unique_ptr<TcpClient>(new TcpClient(fd));
  }

  ~TcpClient() override { ::close(fd_); }

  bool Query(const WorkItem& item) override {
    std::string line = "{\"id\":1,\"op\":\"QUERY\",\"kb\":\"" +
                       rwl::service::JsonEscape(item.kb) + "\",\"q\":\"" +
                       rwl::service::JsonEscape(item.query) + "\"}\n";
    std::string response;
    if (!RoundTrip(line, &response)) return false;
    return response.find("\"ok\":true") != std::string::npos;
  }

  bool Mutate(const WorkItem& item, bool assert_phase,
              uint64_t* version) override {
    std::string line = std::string("{\"id\":1,\"op\":\"") +
                       (assert_phase ? "ASSERT" : "RETRACT") +
                       "\",\"kb\":\"" + rwl::service::JsonEscape(item.kb) +
                       "\",\"text\":\"" +
                       rwl::service::JsonEscape(item.marker) + "\"}\n";
    std::string response;
    if (!RoundTrip(line, &response)) return false;
    if (response.find("\"ok\":true") == std::string::npos) return false;
    if (version != nullptr) {
      size_t at = response.find("\"version\":");
      *version = at == std::string::npos
                     ? 0
                     : std::strtoull(response.c_str() + at + 10, nullptr, 10);
    }
    return true;
  }

  bool QueryMinVersion(const WorkItem& item, uint64_t min_version) override {
    char floor[48];
    std::snprintf(floor, sizeof(floor), ",\"min_version\":%llu}\n",
                  static_cast<unsigned long long>(min_version));
    std::string line = "{\"id\":1,\"op\":\"QUERY\",\"kb\":\"" +
                       rwl::service::JsonEscape(item.kb) + "\",\"q\":\"" +
                       rwl::service::JsonEscape(item.query) + "\"" + floor;
    std::string response;
    if (!RoundTrip(line, &response)) return false;
    return response.find("\"ok\":true") != std::string::npos;
  }

  bool WaitVersion(const WorkItem& item, uint64_t min_version) override {
    char floor[48];
    std::snprintf(floor, sizeof(floor), ",\"min_version\":%llu}\n",
                  static_cast<unsigned long long>(min_version));
    std::string line = "{\"id\":1,\"op\":\"WAIT\",\"kb\":\"" +
                       rwl::service::JsonEscape(item.kb) + "\"" + floor;
    std::string response;
    if (!RoundTrip(line, &response)) return false;
    return response.find("\"ok\":true") != std::string::npos;
  }

  bool RoundTrip(const std::string& line, std::string* response) {
    size_t sent = 0;
    while (sent < line.size()) {
      // MSG_NOSIGNAL: a daemon that closed first must fail this client's
      // round trip, not SIGPIPE-kill the load generator.
      ssize_t w = ::send(fd_, line.data() + sent, line.size() - sent,
                         MSG_NOSIGNAL);
      if (w <= 0) return false;
      sent += static_cast<size_t>(w);
    }
    for (;;) {
      size_t newline = buffer_.find('\n');
      if (newline != std::string::npos) {
        *response = buffer_.substr(0, newline);
        buffer_.erase(0, newline + 1);
        return true;
      }
      char chunk[1 << 12];
      ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (n <= 0) return false;
      buffer_.append(chunk, static_cast<size_t>(n));
    }
  }

 private:
  explicit TcpClient(int fd) : fd_(fd) {}
  int fd_;
  std::string buffer_;
};

// ---- measurement ----

// The first kPostMutationWindow queries (across all threads) after each
// mutation land in a separate "window" histogram: this is exactly where a
// cold successor snapshot would stall, so the window tail is the direct
// measurement of incremental maintenance doing its job.
constexpr uint64_t kPostMutationWindow = 64;

// Upper bounds (µs) of the window histogram buckets; a final overflow
// bucket catches everything above the last bound.
constexpr double kWindowBucketsUs[] = {50,    100,   200,    500,    1000,
                                       2000,  5000,  10000,  50000,  100000,
                                       1000000};
constexpr size_t kWindowBucketCount =
    sizeof(kWindowBucketsUs) / sizeof(kWindowBucketsUs[0]) + 1;

struct PhaseResult {
  std::string phase;
  double duration_s = 0.0;
  uint64_t ops = 0;  // queries + mutations
  uint64_t errors = 0;
  uint64_t mutations = 0;
  double qps = 0.0;
  // Query latencies only — mutations pay copy-on-write rebuild cost and
  // are reported separately so the query tail is not misread.
  double p50_us = 0.0, p90_us = 0.0, p95_us = 0.0, p99_us = 0.0;
  double p999_us = 0.0;
  double max_us = 0.0;
  double mut_p50_us = 0.0, mut_p99_us = 0.0, mut_max_us = 0.0;
  // Post-mutation window (see kPostMutationWindow).
  uint64_t window_count = 0;
  double window_p50_us = 0.0, window_p99_us = 0.0, window_max_us = 0.0;
  std::vector<uint64_t> window_hist = std::vector<uint64_t>(
      kWindowBucketCount, 0);
  // Replica lag (--replica): WAIT round-trip time against the replica
  // immediately after each mutation ack — how long the acked version
  // takes to be applied there (replay lag).  Errors also count failures
  // of the untimed read-your-writes query that follows each WAIT.
  uint64_t replica_probes = 0;
  uint64_t replica_errors = 0;
  double replica_lag_p50_us = 0.0, replica_lag_p99_us = 0.0;
  double replica_lag_max_us = 0.0;
  // WAL fsync percentiles over the service lifetime, stamped onto the
  // mixed row by main() when durability is on (in-process --wal-dir, or
  // read from the daemon's STATS in --connect mode).
  bool has_wal = false;
  uint64_t wal_appends = 0, wal_fsyncs = 0;
  double wal_fsync_p50_us = 0.0, wal_fsync_p99_us = 0.0;
  double wal_fsync_max_us = 0.0;
};

double Percentile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  double index = q * static_cast<double>(sorted.size() - 1);
  size_t lo = static_cast<size_t>(index);
  size_t hi = std::min(lo + 1, sorted.size() - 1);
  double frac = index - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

PhaseResult RunPhase(const std::string& phase, const Config& config,
                     const std::vector<WorkItem>& work,
                     const std::vector<std::unique_ptr<Client>>& clients,
                     int mutate_every, Client* replica = nullptr) {
  std::atomic<bool> stop{false};
  std::vector<std::vector<double>> latencies(clients.size());
  std::vector<std::vector<double>> mutation_latencies(clients.size());
  std::vector<std::vector<double>> window_latencies(clients.size());
  std::vector<uint64_t> errors(clients.size(), 0);
  std::vector<uint64_t> mutations(clients.size(), 0);
  // Only the writer thread (t == 0) probes the replica, so plain members.
  std::vector<double> replica_lag;
  uint64_t replica_probe_errors = 0;
  // Queries since the last mutation, shared across threads; the writer
  // zeroes it after each mutation and readers sample-and-increment, so
  // the first kPostMutationWindow queries after a mutation are tagged.
  // Starts saturated: queries before the first mutation are not a window.
  std::atomic<uint64_t> since_mutation{uint64_t{1} << 40};

  const Clock::time_point start = Clock::now();
  std::vector<std::thread> threads;
  threads.reserve(clients.size());
  for (size_t t = 0; t < clients.size(); ++t) {
    threads.emplace_back([&, t] {
      Client* client = clients[t].get();
      std::vector<double>& lat = latencies[t];
      lat.reserve(1 << 16);
      // Stagger starting offsets so threads spread across tenants.
      size_t index = (t * 7919) % work.size();
      // One writer thread (t == 0) mutates; the rest are pure readers —
      // outstanding-assert bookkeeping keeps every retract valid.
      const bool writer = mutate_every > 0 && t == 0;
      std::map<std::string, int> outstanding;
      uint64_t ops = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        const WorkItem& item = work[index];
        index = (index + 1) % work.size();
        ++ops;
        if (writer && !item.marker.empty() &&
            ops % static_cast<uint64_t>(mutate_every) == 0) {
          int& pending = outstanding[item.kb];
          const bool assert_phase = pending == 0;
          uint64_t acked_version = 0;
          Clock::time_point t0 = Clock::now();
          bool ok = client->Mutate(item, assert_phase, &acked_version);
          // Only successful mutations flip the toggle state: a transport
          // hiccup must not desync the assert/retract cadence from the
          // actual KB state.
          if (ok) {
            pending += assert_phase ? 1 : -1;
          } else {
            ++errors[t];
          }
          ++mutations[t];
          mutation_latencies[t].push_back(
              std::chrono::duration<double, std::micro>(Clock::now() - t0)
                  .count());
          if (ok) since_mutation.store(0, std::memory_order_relaxed);
          // Replica lag probe, in two parts.  Timed: a WAIT round trip
          // for the acked PRIMARY version — how long until the replica
          // has applied it (true replay lag; runs no query, so tenant
          // query cost can't pollute the histogram).  Untimed: a
          // min_version read-your-writes query through the same
          // version-vector handoff — the correctness leg; a wrong or
          // refused answer counts as a probe error.
          if (ok && replica != nullptr && acked_version > 0) {
            Clock::time_point r0 = Clock::now();
            bool applied = replica->WaitVersion(item, acked_version);
            replica_lag.push_back(
                std::chrono::duration<double, std::micro>(Clock::now() - r0)
                    .count());
            if (!applied ||
                !replica->QueryMinVersion(item, acked_version)) {
              ++replica_probe_errors;
            }
          }
          continue;
        }
        Clock::time_point t0 = Clock::now();
        bool ok = client->Query(item);
        if (!ok) ++errors[t];
        const double us =
            std::chrono::duration<double, std::micro>(Clock::now() - t0)
                .count();
        lat.push_back(us);
        if (since_mutation.fetch_add(1, std::memory_order_relaxed) <
            kPostMutationWindow) {
          window_latencies[t].push_back(us);
        }
      }
    });
  }
  std::this_thread::sleep_for(
      std::chrono::duration<double>(config.seconds));
  stop.store(true, std::memory_order_relaxed);
  for (auto& thread : threads) thread.join();
  const double elapsed =
      std::chrono::duration<double>(Clock::now() - start).count();

  PhaseResult result;
  result.phase = phase;
  result.duration_s = elapsed;
  std::vector<double> queries;
  std::vector<double> writes;
  std::vector<double> window;
  for (size_t t = 0; t < clients.size(); ++t) {
    queries.insert(queries.end(), latencies[t].begin(), latencies[t].end());
    writes.insert(writes.end(), mutation_latencies[t].begin(),
                  mutation_latencies[t].end());
    window.insert(window.end(), window_latencies[t].begin(),
                  window_latencies[t].end());
    result.errors += errors[t];
    result.mutations += mutations[t];
  }
  result.ops = queries.size() + writes.size();
  result.qps = static_cast<double>(result.ops) / elapsed;
  std::sort(queries.begin(), queries.end());
  result.p50_us = Percentile(queries, 0.50);
  result.p90_us = Percentile(queries, 0.90);
  result.p95_us = Percentile(queries, 0.95);
  result.p99_us = Percentile(queries, 0.99);
  result.p999_us = Percentile(queries, 0.999);
  result.max_us = queries.empty() ? 0.0 : queries.back();
  std::sort(writes.begin(), writes.end());
  result.mut_p50_us = Percentile(writes, 0.50);
  result.mut_p99_us = Percentile(writes, 0.99);
  result.mut_max_us = writes.empty() ? 0.0 : writes.back();
  std::sort(window.begin(), window.end());
  result.window_count = window.size();
  result.window_p50_us = Percentile(window, 0.50);
  result.window_p99_us = Percentile(window, 0.99);
  result.window_max_us = window.empty() ? 0.0 : window.back();
  std::sort(replica_lag.begin(), replica_lag.end());
  result.replica_probes = replica_lag.size();
  result.replica_errors = replica_probe_errors;
  result.replica_lag_p50_us = Percentile(replica_lag, 0.50);
  result.replica_lag_p99_us = Percentile(replica_lag, 0.99);
  result.replica_lag_max_us = replica_lag.empty() ? 0.0 : replica_lag.back();
  for (double us : window) {
    size_t bucket = 0;
    while (bucket < kWindowBucketCount - 1 && us > kWindowBucketsUs[bucket]) {
      ++bucket;
    }
    ++result.window_hist[bucket];
  }
  return result;
}

std::string PhaseJson(const Config& config, const PhaseResult& result) {
  char buf[1024];
  std::snprintf(
      buf, sizeof(buf),
      "{\"bench\": \"service\", \"phase\": \"%s\", \"mode\": \"%s\", "
      "\"threads\": %d, \"duration_s\": %.3f, \"ops\": %llu, "
      "\"mutations\": %llu, \"errors\": %llu, \"qps\": %.1f, "
      "\"p50_us\": %.1f, \"p90_us\": %.1f, \"p95_us\": %.1f, "
      "\"p99_us\": %.1f, \"p999_us\": %.1f, \"max_us\": %.1f, "
      "\"mut_p50_us\": %.1f, \"mut_p99_us\": %.1f, \"mut_max_us\": %.1f",
      result.phase.c_str(),
      config.connect_port > 0 ? "tcp" : "in-process", config.threads,
      result.duration_s, static_cast<unsigned long long>(result.ops),
      static_cast<unsigned long long>(result.mutations),
      static_cast<unsigned long long>(result.errors), result.qps,
      result.p50_us, result.p90_us, result.p95_us, result.p99_us,
      result.p999_us, result.max_us, result.mut_p50_us, result.mut_p99_us,
      result.mut_max_us);
  std::string row = buf;
  if (result.mutations > 0) {
    // Post-mutation window: [upper_bound_us, count] buckets (the last
    // bucket is the overflow above the largest bound).
    std::snprintf(buf, sizeof(buf),
                  ", \"window_count\": %llu, \"window_p50_us\": %.1f, "
                  "\"window_p99_us\": %.1f, \"window_max_us\": %.1f, "
                  "\"window_hist_us\": [",
                  static_cast<unsigned long long>(result.window_count),
                  result.window_p50_us, result.window_p99_us,
                  result.window_max_us);
    row += buf;
    for (size_t i = 0; i < result.window_hist.size(); ++i) {
      if (i + 1 < kWindowBucketCount) {
        std::snprintf(buf, sizeof(buf), "%s[%.0f, %llu]", i > 0 ? ", " : "",
                      kWindowBucketsUs[i],
                      static_cast<unsigned long long>(result.window_hist[i]));
      } else {
        std::snprintf(buf, sizeof(buf), ", [null, %llu]",
                      static_cast<unsigned long long>(result.window_hist[i]));
      }
      row += buf;
    }
    row += "]";
  }
  if (result.has_wal) {
    std::snprintf(buf, sizeof(buf),
                  ", \"wal_appends\": %llu, \"wal_fsyncs\": %llu, "
                  "\"wal_fsync_p50_us\": %.1f, \"wal_fsync_p99_us\": %.1f, "
                  "\"wal_fsync_max_us\": %.1f",
                  static_cast<unsigned long long>(result.wal_appends),
                  static_cast<unsigned long long>(result.wal_fsyncs),
                  result.wal_fsync_p50_us, result.wal_fsync_p99_us,
                  result.wal_fsync_max_us);
    row += buf;
  }
  if (result.replica_probes > 0) {
    std::snprintf(buf, sizeof(buf),
                  ", \"replica_probes\": %llu, \"replica_errors\": %llu, "
                  "\"replica_lag_p50_us\": %.1f, "
                  "\"replica_lag_p99_us\": %.1f, "
                  "\"replica_lag_max_us\": %.1f",
                  static_cast<unsigned long long>(result.replica_probes),
                  static_cast<unsigned long long>(result.replica_errors),
                  result.replica_lag_p50_us, result.replica_lag_p99_us,
                  result.replica_lag_max_us);
    row += buf;
  }
  row += "}";
  return row;
}

void PrintPhase(const PhaseResult& result) {
  std::printf(
      "%-9s %8.1f qps   %llu ops (%llu mutations, %llu errors) in %.2fs\n"
      "          query latency p50=%.0fus p90=%.0fus p95=%.0fus "
      "p99=%.0fus p99.9=%.0fus max=%.0fus\n",
      result.phase.c_str(), result.qps,
      static_cast<unsigned long long>(result.ops),
      static_cast<unsigned long long>(result.mutations),
      static_cast<unsigned long long>(result.errors), result.duration_s,
      result.p50_us, result.p90_us, result.p95_us, result.p99_us,
      result.p999_us, result.max_us);
  if (result.mutations > 0) {
    std::printf(
        "          mutation latency p50=%.0fus p99=%.0fus max=%.0fus\n"
        "          post-mutation window (%llu queries) p50=%.0fus "
        "p99=%.0fus max=%.0fus\n",
        result.mut_p50_us, result.mut_p99_us, result.mut_max_us,
        static_cast<unsigned long long>(result.window_count),
        result.window_p50_us, result.window_p99_us, result.window_max_us);
  }
  if (result.has_wal) {
    std::printf(
        "          wal %llu appends / %llu fsyncs, fsync p50=%.0fus "
        "p99=%.0fus max=%.0fus\n",
        static_cast<unsigned long long>(result.wal_appends),
        static_cast<unsigned long long>(result.wal_fsyncs),
        result.wal_fsync_p50_us, result.wal_fsync_p99_us,
        result.wal_fsync_max_us);
  }
  if (result.replica_probes > 0) {
    std::printf(
        "          replica lag (%llu probes, %llu errors) p50=%.0fus "
        "p99=%.0fus max=%.0fus\n",
        static_cast<unsigned long long>(result.replica_probes),
        static_cast<unsigned long long>(result.replica_errors),
        result.replica_lag_p50_us, result.replica_lag_p99_us,
        result.replica_lag_max_us);
  }
}

}  // namespace

int main(int argc, char** argv) {
  Config config;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return ++i < argc ? argv[i] : nullptr;
    };
    const char* v = nullptr;
    if (arg == "--threads" && (v = next())) config.threads = std::atoi(v);
    else if (arg == "--seconds" && (v = next())) config.seconds = std::atof(v);
    else if (arg == "--server-threads" && (v = next()))
      config.server_threads = std::atoi(v);
    else if (arg == "--mutate-every" && (v = next()))
      config.mutate_every = std::atoi(v);
    else if (arg == "--nmax" && (v = next())) config.nmax = std::atoi(v);
    else if (arg == "--connect" && (v = next()))
      config.connect_port = std::atoi(v);
    else if (arg == "--json-out" && (v = next())) config.json_out = v;
    else if (arg == "--min-qps" && (v = next())) config.min_qps = std::atof(v);
    else if (arg == "--mixed-min-qps" && (v = next()))
      config.mixed_min_qps = std::atof(v);
    else if (arg == "--mixed-max-p999-us" && (v = next()))
      config.mixed_max_p999_us = std::atof(v);
    else if (arg == "--mut-max-p99-us" && (v = next()))
      config.mut_max_p99_us = std::atof(v);
    else if (arg == "--wal-dir" && (v = next())) config.wal_dir = v;
    else if (arg == "--replica" && (v = next()))
      config.replica_port = std::atoi(v);
    else if (arg == "--replica-max-lag-p99-us" && (v = next()))
      config.replica_max_lag_p99_us = std::atof(v);
    else return Usage(argv[0]);
  }
  if (config.threads < 1 || config.seconds <= 0.0) return Usage(argv[0]);
  if (config.replica_port > 0 && config.connect_port <= 0) {
    std::fprintf(stderr,
                 "rwlload: --replica requires --connect (the replica tails "
                 "a primary daemon, not an in-process service)\n");
    return 2;
  }
  if (!config.wal_dir.empty() && config.connect_port > 0) {
    std::fprintf(stderr,
                 "rwlload: --wal-dir is in-process only; in --connect mode "
                 "start rwld itself with --wal-dir\n");
    return 2;
  }

  // ---- the paper-KB workload ----
  rwl::service::ServiceOptions options;
  options.scheduler.num_threads = config.server_threads;
  options.inference.tolerances =
      rwl::semantics::ToleranceVector::Uniform(0.04);
  options.inference.limit.domain_sizes.clear();
  for (int n = 8; n <= config.nmax; n = n < 16 ? n + 8 : n * 2) {
    options.inference.limit.domain_sizes.push_back(n);
  }
  if (options.inference.limit.domain_sizes.empty() ||
      options.inference.limit.domain_sizes.back() != config.nmax) {
    options.inference.limit.domain_sizes.push_back(config.nmax);
  }
  options.wal.dir = config.wal_dir;

  // In-process server — only when we are the server: in --connect mode
  // the daemon under test owns the KBs, and constructing a KbService here
  // would park an idle scheduler pool on the measurement host.
  std::optional<KbService> service;
  std::unique_ptr<TcpClient> control;
  if (config.connect_port > 0) {
    control = TcpClient::Connect(config.connect_port);
    if (control == nullptr) {
      std::fprintf(stderr, "rwlload: cannot connect to 127.0.0.1:%d\n",
                   config.connect_port);
      return 1;
    }
  } else {
    service.emplace(options);
  }

  std::vector<WorkItem> work;
  int loaded = 0;
  for (const auto& example : rwl::fixtures::AllPaperExamples()) {
    // The tenant's mixed-phase marker: its first unary predicate over a
    // load-generator-private constant (parsed locally, so TCP mode needs
    // no introspection op).  Computed BEFORE the load so RwlLoadC can be
    // declared up front: were the first ASSERT to introduce it as a fresh
    // constant, the mutation would extend the vocabulary, change the
    // signature fingerprint, and force the full rebuild path on a toggle
    // that is supposed to exercise incremental patching.
    std::string marker;
    {
      rwl::KnowledgeBase probe;
      std::string probe_error;
      if (probe.AddParsed(example.kb, &probe_error)) {
        for (const auto& predicate : probe.vocabulary().predicates()) {
          if (predicate.arity == 1) {
            marker = predicate.name + "(RwlLoadC)";
            break;
          }
        }
      }
    }
    std::vector<std::string> declare = example.extra_constants;
    if (!marker.empty()) declare.push_back("RwlLoadC");
    if (config.connect_port > 0) {
      // Load over the wire so the daemon owns the KBs.
      std::string line = "{\"id\":1,\"op\":\"LOAD\",\"kb\":\"" +
                         rwl::service::JsonEscape(example.id) +
                         "\",\"text\":\"" +
                         rwl::service::JsonEscape(example.kb) + "\"";
      if (!declare.empty()) {
        line += ",\"declare\":[";
        for (size_t i = 0; i < declare.size(); ++i) {
          if (i > 0) line += ",";
          line += "\"" + rwl::service::JsonEscape(declare[i]) + "\"";
        }
        line += "]";
      }
      line += "}\n";
      std::string response;
      if (!control->RoundTrip(line, &response) ||
          response.find("\"ok\":true") == std::string::npos) {
        std::fprintf(stderr, "rwlload: LOAD %s failed: %s\n",
                     example.id.c_str(), response.c_str());
        continue;
      }
    } else {
      KbService::MutationResult load =
          service->Load(example.id, example.kb, declare);
      if (!load.ok) {
        std::fprintf(stderr, "rwlload: LOAD %s failed: %s\n",
                     example.id.c_str(), load.error.c_str());
        continue;
      }
    }
    ++loaded;
    work.push_back(WorkItem{example.id, example.query, marker});
  }
  if (work.empty()) {
    std::fprintf(stderr, "rwlload: no workload\n");
    return 1;
  }

  // ---- clients ----
  std::vector<std::unique_ptr<Client>> clients;
  for (int t = 0; t < config.threads; ++t) {
    if (config.connect_port > 0) {
      auto client = TcpClient::Connect(config.connect_port);
      if (client == nullptr) {
        std::fprintf(stderr, "rwlload: client connect failed\n");
        return 1;
      }
      clients.push_back(std::move(client));
    } else {
      clients.push_back(std::make_unique<InProcessClient>(&*service));
    }
  }

  // ---- warmup: answer every work item once, sequentially ----
  // Populates each tenant's snapshot caches (plans, finite memos, world
  // lists) and drops work items no engine can answer, so the timed phases
  // measure answers, not error paths.
  const Clock::time_point warm_start = Clock::now();
  std::vector<WorkItem> answerable;
  for (const WorkItem& item : work) {
    if (clients[0]->Query(item)) answerable.push_back(item);
  }
  const double warm_s =
      std::chrono::duration<double>(Clock::now() - warm_start).count();
  if (answerable.empty()) {
    std::fprintf(stderr, "rwlload: no answerable queries in the corpus\n");
    return 1;
  }
  std::printf(
      "rwlload: %d KBs loaded, %zu/%zu queries answerable, warmup %.2fs, "
      "%d client threads (%s)\n",
      loaded, answerable.size(), work.size(), warm_s, config.threads,
      config.connect_port > 0 ? "tcp" : "in-process");

  // ---- timed phases ----
  std::unique_ptr<TcpClient> replica_client;
  if (config.replica_port > 0) {
    replica_client = TcpClient::Connect(config.replica_port);
    if (replica_client == nullptr) {
      std::fprintf(stderr,
                   "rwlload: cannot connect to replica 127.0.0.1:%d\n",
                   config.replica_port);
      return 1;
    }
    // The replica bootstraps by replaying the primary's feed — one KB
    // build per shipped LOAD record — in its tailer thread.  Until that
    // backlog drains, a min_version probe measures bootstrap catch-up,
    // not steady-state replication lag.  Block until every loaded KB
    // answers on the replica so the timed phases measure the latter.
    const Clock::time_point catchup_start = Clock::now();
    for (const WorkItem& item : answerable) {
      while (!replica_client->Query(item)) {
        if (std::chrono::duration<double>(Clock::now() - catchup_start)
                .count() > 60.0) {
          std::fprintf(stderr,
                       "rwlload: replica failed to catch up within 60s\n");
          return 1;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
      }
    }
    std::printf("rwlload: replica caught up in %.2fs\n",
                std::chrono::duration<double>(Clock::now() - catchup_start)
                    .count());
  }

  std::vector<std::string> json_rows;
  PhaseResult readonly =
      RunPhase("readonly", config, answerable, clients, /*mutate_every=*/0);
  PrintPhase(readonly);
  json_rows.push_back(PhaseJson(config, readonly));

  std::optional<PhaseResult> mixed;
  if (config.mutate_every > 0) {
    mixed = RunPhase("mixed", config, answerable, clients,
                     config.mutate_every, replica_client.get());
    // Stamp the service's WAL fsync percentiles onto the mixed row: the
    // mixed phase is where the fsync-before-ack path runs hot.
    if (service.has_value() && service->wal() != nullptr) {
      rwl::service::WalStats wal = service->wal()->stats();
      mixed->has_wal = true;
      mixed->wal_appends = wal.appends;
      mixed->wal_fsyncs = wal.fsyncs;
      mixed->wal_fsync_p50_us = wal.fsync_p50_us;
      mixed->wal_fsync_p99_us = wal.fsync_p99_us;
      mixed->wal_fsync_max_us = wal.fsync_max_us;
    } else if (control != nullptr) {
      // --connect: best-effort read of the daemon's WAL counters.
      std::string response, parse_error;
      rwl::service::Json stats;
      if (control->RoundTrip("{\"id\":1,\"op\":\"STATS\"}\n", &response) &&
          rwl::service::ParseJson(response, &stats, &parse_error)) {
        if (const rwl::service::Json* wal = stats.Find("wal")) {
          auto number = [&](const char* key) {
            const rwl::service::Json* field = wal->Find(key);
            return field == nullptr ? 0.0 : field->number;
          };
          mixed->has_wal = true;
          mixed->wal_appends = static_cast<uint64_t>(number("appends"));
          mixed->wal_fsyncs = static_cast<uint64_t>(number("fsyncs"));
          mixed->wal_fsync_p50_us = number("fsync_p50_us");
          mixed->wal_fsync_p99_us = number("fsync_p99_us");
          mixed->wal_fsync_max_us = number("fsync_max_us");
        }
      }
    }
    PrintPhase(*mixed);
    json_rows.push_back(PhaseJson(config, *mixed));
  }

  // ---- report ----
  for (const std::string& row : json_rows) {
    std::printf("BENCH_JSON %s\n", row.c_str());
  }
  if (!config.json_out.empty()) {
    std::ofstream out(config.json_out);
    for (const std::string& row : json_rows) out << row << "\n";
    std::printf("rwlload: wrote %s\n", config.json_out.c_str());
  }

  bool failed = false;
  if (config.min_qps > 0.0 && readonly.qps < config.min_qps) {
    std::fprintf(stderr,
                 "rwlload: FAIL readonly qps %.1f < required %.1f\n",
                 readonly.qps, config.min_qps);
    failed = true;
  }
  if (config.mixed_min_qps > 0.0 && mixed.has_value() &&
      mixed->qps < config.mixed_min_qps) {
    std::fprintf(stderr, "rwlload: FAIL mixed qps %.1f < required %.1f\n",
                 mixed->qps, config.mixed_min_qps);
    failed = true;
  }
  if (config.mixed_max_p999_us > 0.0 && mixed.has_value() &&
      mixed->p999_us > config.mixed_max_p999_us) {
    std::fprintf(stderr,
                 "rwlload: FAIL mixed query p99.9 %.1fus > allowed %.1fus\n",
                 mixed->p999_us, config.mixed_max_p999_us);
    failed = true;
  }
  if (config.mut_max_p99_us > 0.0 && mixed.has_value() &&
      mixed->mut_p99_us > config.mut_max_p99_us) {
    std::fprintf(stderr,
                 "rwlload: FAIL mixed mutation p99 %.1fus > allowed %.1fus\n",
                 mixed->mut_p99_us, config.mut_max_p99_us);
    failed = true;
  }
  if (config.replica_max_lag_p99_us > 0.0 && mixed.has_value()) {
    if (mixed->replica_probes == 0 || mixed->replica_errors > 0) {
      std::fprintf(stderr,
                   "rwlload: FAIL replica probes=%llu errors=%llu (want "
                   ">0 probes, 0 errors)\n",
                   static_cast<unsigned long long>(mixed->replica_probes),
                   static_cast<unsigned long long>(mixed->replica_errors));
      failed = true;
    } else if (mixed->replica_lag_p99_us > config.replica_max_lag_p99_us) {
      std::fprintf(stderr,
                   "rwlload: FAIL replica lag p99 %.1fus > allowed %.1fus\n",
                   mixed->replica_lag_p99_us, config.replica_max_lag_p99_us);
      failed = true;
    }
  }
  return failed ? 1 : 0;
}
