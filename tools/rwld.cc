// rwld — the random-worlds knowledge-base daemon.
//
// Serves a KbCatalog of named, versioned KBs over a newline-delimited JSON
// protocol (src/service/protocol.h): LOAD / ASSERT / RETRACT / QUERY /
// BATCH / STATS / SHUTDOWN, one request per line, one response per line.
//
// Concurrency model: one in-flight request per connection, answered in
// order (open more connections for parallelism — rwlload opens one per
// client thread).  Mutations ack once their WAL order is fixed; the
// successor snapshot is minted on the catalog's background maintenance
// worker and published atomically.  Queries pin the KB version at
// admission and run on the shared scheduler, so a slow query on one
// connection never blocks another connection's traffic and never sees a
// later version than its admission point (snapshot isolation).  Each
// connection floors its queries' min_version at its own highest mutation
// ack, so clients read their own writes even mid-publication (see README
// "Running as a service").
//
// Durability & replication (README "Durability & replication"):
//   --wal-dir DIR   journal every mutation (fsync before ack) and recover
//                   the catalog from DIR on boot (newest snapshots + WAL
//                   replay, torn final records dropped)
//   --replica-of P  run as a read-only log-shipping replica of the rwld
//                   at 127.0.0.1:P — tails its TAIL feed, applies records
//                   through the same catalog path, serves QUERY/BATCH
//                   (min_version is interpreted as a PRIMARY version and
//                   mapped through the applied version vector, so
//                   read-your-writes survives the primary->replica hop)
//
// Usage:
//   rwld --port P [--threads N] [--queue-depth D] [--nmax N]
//   rwld --stdio  [--threads N] ...
//
//   --port P        listen on 127.0.0.1:P (TCP, one thread per connection)
//   --stdio         serve a single session on stdin/stdout (transcripts,
//                   CI smoke tests:  rwld --stdio < script.ndjson)
//   --threads N     scheduler worker threads (default: hardware threads)
//   --queue-depth D per-tenant admission cap (default 256)
//   --nmax N        largest sweep domain size (default 48, as rwlq)
//   --plan MODE     default plan mode: fidelity | cost (default fidelity)
//   --wal-dir DIR   write-ahead log + snapshots + crash recovery
//   --snapshot-every N  journaled mutations per KB between snapshots
//   --replica-of P  read-only replica of the primary at 127.0.0.1:P
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/select.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <iostream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/service/protocol.h"
#include "src/service/replica.h"
#include "src/service/service.h"
#include "src/service/wal.h"

namespace {

using rwl::service::KbService;
using rwl::service::Request;

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s (--port P | --stdio) [--threads N]\n"
               "          [--queue-depth D] [--nmax N] [--plan fidelity|cost]\n"
               "          [--wal-dir DIR] [--snapshot-every N]\n"
               "          [--replica-of PORT]\n",
               argv0);
  return 2;
}

// How long a replica QUERY waits for the primary version named by
// min_version to be applied before reporting lag.
constexpr double kReplicaWaitMs = 30000.0;

// Largest accepted request line.  On the TCP path this bounds
// per-connection buffering (the connection is dropped before `buffer`
// exceeds it); on the local --stdio pipe std::getline has already read
// the line, so the cap only rejects it post-hoc — stdio serves the
// operator's own transcripts, not untrusted peers.
constexpr size_t kMaxLineBytes = 8u << 20;

struct Daemon {
  rwl::service::ReplicationHub hub;
  KbService service;
  std::atomic<bool> shutdown{false};
  // Set in replica mode: the tailer thread applies the primary's feed
  // here, and QUERY/BATCH route their min_version through it.
  std::unique_ptr<rwl::service::ReplicaApplier> replica;

  explicit Daemon(rwl::service::ServiceOptions options)
      : service((options.replication = &hub, options)) {}

  // Handles one request line; returns the response line (no newline).
  // `session` carries the connection's read-your-writes state: mutation
  // acks are recorded there, and queries wait for the connection's own
  // acked version before pinning a snapshot.  A TAIL request sets
  // *start_tail: the caller must switch the connection into streaming
  // after sending the returned ack.
  std::string Handle(const std::string& line,
                     rwl::service::SessionState* session, bool* start_tail) {
    *start_tail = false;
    Request request;
    std::string error;
    if (!rwl::service::ParseRequest(line, &request, &error)) {
      // ParseRequest fills the id before validating the rest, so a
      // validation failure still correlates with the client's request;
      // id 0 only when the JSON itself was unparseable.
      return rwl::service::ErrorResponse(request.id, error);
    }
    if (replica != nullptr) {
      switch (request.op) {
        case Request::Op::kLoad:
        case Request::Op::kAssert:
        case Request::Op::kRetract:
          return rwl::service::ErrorResponse(
              request.id, "read-only replica: mutate the primary");
        case Request::Op::kQuery:
        case Request::Op::kBatch: {
          // The version-vector handoff: the client's min_version names a
          // PRIMARY version (its own last primary ack).  Wait until the
          // feed has applied it, then pin via the mapped local version.
          if (request.options.min_version > 0) {
            uint64_t local_version = 0;
            if (!replica->WaitForPrimaryVersion(request.kb,
                                                request.options.min_version,
                                                kReplicaWaitMs,
                                                &local_version)) {
              return rwl::service::ErrorResponse(
                  request.id,
                  "replica lag: primary version not yet applied");
            }
            request.options.min_version = local_version;
          }
          break;
        }
        case Request::Op::kWait: {
          // Pure replication-lag probe: block until the feed has applied
          // the named PRIMARY version, answer with the mapped local
          // version, run no query.
          uint64_t local_version = 0;
          if (!replica->WaitForPrimaryVersion(request.kb,
                                              request.options.min_version,
                                              kReplicaWaitMs,
                                              &local_version)) {
            return rwl::service::ErrorResponse(
                request.id, "replica lag: primary version not yet applied");
          }
          return rwl::service::WaitResponse(request.id, request.kb,
                                            local_version);
        }
        default:
          break;
      }
    }
    auto ack = [&](const KbService::MutationResult& result) {
      if (result.ok) session->RecordAck(request.kb, result.version);
      return rwl::service::MutationResponse(request.id, request.kb, result);
    };
    switch (request.op) {
      case Request::Op::kLoad:
        return ack(service.Load(request.kb, request.text, request.declare));
      case Request::Op::kAssert:
        return ack(service.Assert(request.kb, request.text));
      case Request::Op::kRetract:
        return ack(service.Retract(request.kb, request.text));
      case Request::Op::kQuery:
        request.options.min_version = std::max(
            request.options.min_version, session->AckedVersion(request.kb));
        return rwl::service::QueryResponse(
            request.id,
            service.Query(request.kb, request.query, request.options));
      case Request::Op::kBatch:
        request.options.min_version = std::max(
            request.options.min_version, session->AckedVersion(request.kb));
        return rwl::service::BatchResponse(
            request.id,
            service.Batch(request.kb, request.queries, request.options));
      case Request::Op::kStats:
        return rwl::service::StatsResponse(request.id, service,
                                           replica.get());
      case Request::Op::kShutdown:
        shutdown.store(true, std::memory_order_relaxed);
        return rwl::service::ShutdownResponse(request.id);
      case Request::Op::kTail:
        *start_tail = true;
        return rwl::service::TailAckResponse(request.id);
      case Request::Op::kWait:
        // Primary: versions are "held" once published (acked versions
        // reach publication via the maintenance worker; 30s bounds a
        // wedged queue).
        if (!service.WaitForVersion(request.kb, request.options.min_version,
                                    kReplicaWaitMs)) {
          return rwl::service::ErrorResponse(
              request.id, "timed out waiting for version");
        }
        return rwl::service::WaitResponse(request.id, request.kb,
                                          request.options.min_version);
    }
    return rwl::service::ErrorResponse(request.id, "unreachable");
  }

  // The replication feed: one SNAPSHOT bootstrap per live KB (serialized
  // from the staged tails AFTER subscribing, so a racing mutation is
  // either inside a bootstrap snapshot or in the stream — the replica
  // dedups by version), then live records until `emit` fails or the
  // daemon shuts down.
  void StreamTail(const std::function<bool(const std::string&)>& emit) {
    std::shared_ptr<rwl::service::ReplicationSubscription> sub =
        hub.Subscribe();
    bool alive = true;
    for (const auto& head : service.Heads()) {
      rwl::service::KbCatalog::StagedState staged =
          service.catalog()->Staged(head->name);
      if (!staged.ok) continue;
      if (!emit(rwl::service::EncodeWalRecord(rwl::service::MakeSnapshotRecord(
              head->name, staged.version, staged.kb)))) {
        alive = false;
        break;
      }
    }
    std::string line;
    while (alive && !shutdown.load(std::memory_order_relaxed) &&
           !sub->closed()) {
      if (sub->Next(&line, 200.0)) alive = emit(line);
    }
    hub.Unsubscribe(sub);
  }
};

int ServeStdio(Daemon* daemon) {
  // std::getline, not a fixed buffer: a LOAD payload can exceed any fixed
  // line size, and a truncated read would desync the response stream.
  rwl::service::SessionState session;
  std::string line;
  while (!daemon->shutdown.load(std::memory_order_relaxed) &&
         std::getline(std::cin, line)) {
    while (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    if (line.size() > kMaxLineBytes) {
      std::printf("%s\n",
                  rwl::service::ErrorResponse(0, "request line too large")
                      .c_str());
      std::fflush(stdout);
      continue;
    }
    bool start_tail = false;
    std::string response = daemon->Handle(line, &session, &start_tail);
    std::printf("%s\n", response.c_str());
    std::fflush(stdout);
    if (start_tail) {
      daemon->StreamTail([](const std::string& record) {
        std::printf("%s\n", record.c_str());
        return std::fflush(stdout) == 0;
      });
      return 0;  // the stream is the rest of the session
    }
  }
  return 0;
}

// One live connection thread, registered with the daemon so shutdown can
// unblock its recv() and the accept loop can reap it once finished.
struct Connection {
  std::thread thread;
  int fd = -1;
  std::atomic<bool> finished{false};
};

// Writes one whole line (newline appended).  MSG_NOSIGNAL: a peer that
// closed mid-response must surface as a send error on this connection,
// not SIGPIPE-kill the daemon.
bool SendLine(int fd, std::string line) {
  line += '\n';
  size_t sent = 0;
  while (sent < line.size()) {
    ssize_t w = ::send(fd, line.data() + sent, line.size() - sent,
                       MSG_NOSIGNAL);
    if (w <= 0) return false;
    sent += static_cast<size_t>(w);
  }
  return true;
}

void ServeConnection(Daemon* daemon, Connection* connection) {
  const int fd = connection->fd;
  rwl::service::SessionState session;
  std::string buffer;
  char chunk[1 << 14];
  for (;;) {
    ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n <= 0) break;
    buffer.append(chunk, static_cast<size_t>(n));
    if (buffer.size() > kMaxLineBytes) {
      // No newline within the cap: drop the connection rather than
      // buffer an unbounded line.
      break;
    }
    size_t start = 0;
    for (;;) {
      size_t newline = buffer.find('\n', start);
      if (newline == std::string::npos) break;
      std::string line = buffer.substr(start, newline - start);
      start = newline + 1;
      if (!line.empty() && line.back() == '\r') line.pop_back();
      if (line.empty()) continue;
      bool start_tail = false;
      std::string response = daemon->Handle(line, &session, &start_tail);
      bool write_failed = !SendLine(fd, std::move(response));
      if (!write_failed && start_tail) {
        // The connection is now a replication feed; it ends when the
        // subscriber drops, the daemon shuts down, or the send fails.
        daemon->StreamTail(
            [fd](const std::string& record) { return SendLine(fd, record); });
        write_failed = true;  // fall through to close
      }
      if (write_failed || daemon->shutdown.load(std::memory_order_relaxed)) {
        ::close(fd);
        connection->finished.store(true, std::memory_order_release);
        return;
      }
    }
    buffer.erase(0, start);
  }
  ::close(fd);
  connection->finished.store(true, std::memory_order_release);
}

// ---- replica tailer ----

int ConnectLoopback(int port) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = ::htonl(INADDR_LOOPBACK);
  addr.sin_port = ::htons(static_cast<uint16_t>(port));
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

// Tails the primary's TAIL feed and applies every record; reconnects
// (and implicitly re-bootstraps — the feed restarts with SNAPSHOT
// records, deduplicated by version) on any error until shutdown.
void TailPrimary(Daemon* daemon, int primary_port) {
  while (!daemon->shutdown.load(std::memory_order_relaxed)) {
    int fd = ConnectLoopback(primary_port);
    if (fd < 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(500));
      continue;
    }
    // recv timeout so shutdown is noticed promptly on an idle feed.
    timeval timeout{0, 200000};
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof(timeout));
    if (!SendLine(fd, "{\"op\":\"TAIL\"}")) {
      ::close(fd);
      continue;
    }
    std::string buffer;
    char chunk[1 << 14];
    bool saw_ack = false;
    bool feed_ok = true;
    while (feed_ok && !daemon->shutdown.load(std::memory_order_relaxed)) {
      ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
      if (n == 0) break;
      if (n < 0) {
        if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) {
          continue;
        }
        break;
      }
      buffer.append(chunk, static_cast<size_t>(n));
      size_t start = 0;
      for (;;) {
        size_t newline = buffer.find('\n', start);
        if (newline == std::string::npos) break;
        std::string line = buffer.substr(start, newline - start);
        start = newline + 1;
        if (line.empty()) continue;
        if (!saw_ack) {
          saw_ack = true;  // {"id":0,"ok":true,"tail":true}
          continue;
        }
        std::string error;
        if (!daemon->replica->ApplyLine(line, &error)) {
          std::fprintf(stderr, "rwld: replica apply failed: %s\n",
                       error.c_str());
          feed_ok = false;  // drop the feed, reconnect, re-bootstrap
          break;
        }
      }
      buffer.erase(0, start);
    }
    ::close(fd);
    if (!daemon->shutdown.load(std::memory_order_relaxed)) {
      std::this_thread::sleep_for(std::chrono::milliseconds(500));
    }
  }
}

int ServeTcp(Daemon* daemon, int port) {
  int listen_fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd < 0) {
    std::perror("rwld: socket");
    return 1;
  }
  int reuse = 1;
  ::setsockopt(listen_fd, SOL_SOCKET, SO_REUSEADDR, &reuse, sizeof(reuse));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = ::htonl(INADDR_LOOPBACK);
  addr.sin_port = ::htons(static_cast<uint16_t>(port));
  if (::bind(listen_fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    std::perror("rwld: bind");
    ::close(listen_fd);
    return 1;
  }
  if (::listen(listen_fd, 64) < 0) {
    std::perror("rwld: listen");
    ::close(listen_fd);
    return 1;
  }
  std::fprintf(stderr, "rwld: listening on 127.0.0.1:%d\n", port);

  std::vector<std::unique_ptr<Connection>> connections;
  auto reap_finished = [&connections] {
    for (auto it = connections.begin(); it != connections.end();) {
      if ((*it)->finished.load(std::memory_order_acquire)) {
        (*it)->thread.join();
        it = connections.erase(it);
      } else {
        ++it;
      }
    }
  };
  while (!daemon->shutdown.load(std::memory_order_relaxed)) {
    // Poll with a timeout so a SHUTDOWN request (handled on a connection
    // thread) stops the accept loop promptly; each tick also reaps
    // finished connection threads so a long-lived daemon stays bounded.
    fd_set read_fds;
    FD_ZERO(&read_fds);
    FD_SET(listen_fd, &read_fds);
    timeval timeout{0, 200000};  // 200 ms
    int ready = ::select(listen_fd + 1, &read_fds, nullptr, nullptr,
                         &timeout);
    reap_finished();
    if (ready <= 0) continue;
    int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd < 0) continue;
    auto connection = std::make_unique<Connection>();
    connection->fd = fd;
    Connection* raw = connection.get();
    connection->thread = std::thread(ServeConnection, daemon, raw);
    connections.push_back(std::move(connection));
  }
  ::close(listen_fd);
  // Unblock every idle connection's recv() so shutdown never waits on a
  // client that simply stays connected.
  for (auto& connection : connections) {
    if (!connection->finished.load(std::memory_order_acquire)) {
      ::shutdown(connection->fd, SHUT_RDWR);
    }
  }
  for (auto& connection : connections) connection->thread.join();
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  int port = 0;
  bool stdio = false;
  int replica_of = 0;
  rwl::service::ServiceOptions options;
  options.inference.tolerances =
      rwl::semantics::ToleranceVector::Uniform(0.04);
  int nmax = 48;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return ++i < argc ? argv[i] : nullptr;
    };
    if (arg == "--port") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      port = std::atoi(v);
    } else if (arg == "--stdio") {
      stdio = true;
    } else if (arg == "--threads") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      options.scheduler.num_threads = std::atoi(v);
    } else if (arg == "--queue-depth") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      options.scheduler.max_queue_depth =
          static_cast<size_t>(std::atoll(v));
    } else if (arg == "--nmax") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      nmax = std::atoi(v);
    } else if (arg == "--plan") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      std::string mode = v;
      if (mode == "cost") {
        options.inference.plan_mode = rwl::PlanMode::kMinCost;
      } else if (mode != "fidelity") {
        return Usage(argv[0]);
      }
    } else if (arg == "--wal-dir") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      options.wal.dir = v;
    } else if (arg == "--snapshot-every") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      options.wal.snapshot_every = std::atoi(v);
    } else if (arg == "--replica-of") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      replica_of = std::atoi(v);
    } else {
      return Usage(argv[0]);
    }
  }
  if (stdio == (port > 0)) return Usage(argv[0]);  // exactly one mode
  if (replica_of > 0 && !options.wal.dir.empty()) {
    // A replica's durability is the primary's WAL; it re-bootstraps over
    // TAIL on every (re)start instead of journaling its own copy.
    std::fprintf(stderr, "rwld: --replica-of and --wal-dir are exclusive\n");
    return 2;
  }

  // The rwlq sweep schedule, so a service answer matches the CLI's.
  options.inference.limit.domain_sizes.clear();
  for (int n = 8; n <= nmax; n = n < 16 ? n + 8 : n * 2) {
    options.inference.limit.domain_sizes.push_back(n);
  }
  if (options.inference.limit.domain_sizes.empty() ||
      options.inference.limit.domain_sizes.back() != nmax) {
    options.inference.limit.domain_sizes.push_back(nmax);
  }

  Daemon daemon(options);
  if (!options.wal.dir.empty()) {
    std::vector<std::string> warnings;
    std::string error;
    if (!daemon.service.Recover(&warnings, &error)) {
      std::fprintf(stderr, "rwld: recovery failed: %s\n", error.c_str());
      return 1;
    }
    for (const std::string& warning : warnings) {
      std::fprintf(stderr, "rwld: recovery warning: %s\n", warning.c_str());
    }
    std::fprintf(stderr, "rwld: recovered %zu kb(s) from %s\n",
                 daemon.service.Heads().size(), options.wal.dir.c_str());
  }
  std::thread tailer;
  if (replica_of > 0) {
    daemon.replica = std::make_unique<rwl::service::ReplicaApplier>(
        daemon.service.catalog());
    std::fprintf(stderr, "rwld: replica of 127.0.0.1:%d\n", replica_of);
    tailer = std::thread(TailPrimary, &daemon, replica_of);
  }
  int exit_code = stdio ? ServeStdio(&daemon) : ServeTcp(&daemon, port);
  daemon.shutdown.store(true, std::memory_order_relaxed);
  if (tailer.joinable()) tailer.join();
  return exit_code;
}
