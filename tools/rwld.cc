// rwld — the random-worlds knowledge-base daemon.
//
// Serves a KbCatalog of named, versioned KBs over a newline-delimited JSON
// protocol (src/service/protocol.h): LOAD / ASSERT / RETRACT / QUERY /
// BATCH / STATS / SHUTDOWN, one request per line, one response per line.
//
// Concurrency model: one in-flight request per connection, answered in
// order (open more connections for parallelism — rwlload opens one per
// client thread).  Mutations ack once their WAL order is fixed; the
// successor snapshot is minted on the catalog's background maintenance
// worker and published atomically.  Queries pin the KB version at
// admission and run on the shared scheduler, so a slow query on one
// connection never blocks another connection's traffic and never sees a
// later version than its admission point (snapshot isolation).  Each
// connection floors its queries' min_version at its own highest mutation
// ack, so clients read their own writes even mid-publication (see README
// "Running as a service").
//
// Usage:
//   rwld --port P [--threads N] [--queue-depth D] [--nmax N]
//   rwld --stdio  [--threads N] ...
//
//   --port P        listen on 127.0.0.1:P (TCP, one thread per connection)
//   --stdio         serve a single session on stdin/stdout (transcripts,
//                   CI smoke tests:  rwld --stdio < script.ndjson)
//   --threads N     scheduler worker threads (default: hardware threads)
//   --queue-depth D per-tenant admission cap (default 256)
//   --nmax N        largest sweep domain size (default 48, as rwlq)
//   --plan MODE     default plan mode: fidelity | cost (default fidelity)
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/select.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/service/protocol.h"
#include "src/service/service.h"

namespace {

using rwl::service::KbService;
using rwl::service::Request;

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s (--port P | --stdio) [--threads N]\n"
               "          [--queue-depth D] [--nmax N] [--plan fidelity|cost]\n",
               argv0);
  return 2;
}

// Largest accepted request line.  On the TCP path this bounds
// per-connection buffering (the connection is dropped before `buffer`
// exceeds it); on the local --stdio pipe std::getline has already read
// the line, so the cap only rejects it post-hoc — stdio serves the
// operator's own transcripts, not untrusted peers.
constexpr size_t kMaxLineBytes = 8u << 20;

struct Daemon {
  KbService service;
  std::atomic<bool> shutdown{false};

  explicit Daemon(const rwl::service::ServiceOptions& options)
      : service(options) {}

  // Handles one request line; returns the response line (no newline).
  // `session` carries the connection's read-your-writes state: mutation
  // acks are recorded there, and queries wait for the connection's own
  // acked version before pinning a snapshot.
  std::string Handle(const std::string& line,
                     rwl::service::SessionState* session) {
    Request request;
    std::string error;
    if (!rwl::service::ParseRequest(line, &request, &error)) {
      // ParseRequest fills the id before validating the rest, so a
      // validation failure still correlates with the client's request;
      // id 0 only when the JSON itself was unparseable.
      return rwl::service::ErrorResponse(request.id, error);
    }
    auto ack = [&](const KbService::MutationResult& result) {
      if (result.ok) session->RecordAck(request.kb, result.version);
      return rwl::service::MutationResponse(request.id, request.kb, result);
    };
    switch (request.op) {
      case Request::Op::kLoad:
        return ack(service.Load(request.kb, request.text, request.declare));
      case Request::Op::kAssert:
        return ack(service.Assert(request.kb, request.text));
      case Request::Op::kRetract:
        return ack(service.Retract(request.kb, request.text));
      case Request::Op::kQuery:
        request.options.min_version = std::max(
            request.options.min_version, session->AckedVersion(request.kb));
        return rwl::service::QueryResponse(
            request.id,
            service.Query(request.kb, request.query, request.options));
      case Request::Op::kBatch:
        request.options.min_version = std::max(
            request.options.min_version, session->AckedVersion(request.kb));
        return rwl::service::BatchResponse(
            request.id,
            service.Batch(request.kb, request.queries, request.options));
      case Request::Op::kStats:
        return rwl::service::StatsResponse(request.id, service);
      case Request::Op::kShutdown:
        shutdown.store(true, std::memory_order_relaxed);
        return rwl::service::ShutdownResponse(request.id);
    }
    return rwl::service::ErrorResponse(request.id, "unreachable");
  }
};

int ServeStdio(Daemon* daemon) {
  // std::getline, not a fixed buffer: a LOAD payload can exceed any fixed
  // line size, and a truncated read would desync the response stream.
  rwl::service::SessionState session;
  std::string line;
  while (!daemon->shutdown.load(std::memory_order_relaxed) &&
         std::getline(std::cin, line)) {
    while (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    if (line.size() > kMaxLineBytes) {
      std::printf("%s\n",
                  rwl::service::ErrorResponse(0, "request line too large")
                      .c_str());
      std::fflush(stdout);
      continue;
    }
    std::string response = daemon->Handle(line, &session);
    std::printf("%s\n", response.c_str());
    std::fflush(stdout);
  }
  return 0;
}

// One live connection thread, registered with the daemon so shutdown can
// unblock its recv() and the accept loop can reap it once finished.
struct Connection {
  std::thread thread;
  int fd = -1;
  std::atomic<bool> finished{false};
};

void ServeConnection(Daemon* daemon, Connection* connection) {
  const int fd = connection->fd;
  rwl::service::SessionState session;
  std::string buffer;
  char chunk[1 << 14];
  for (;;) {
    ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n <= 0) break;
    buffer.append(chunk, static_cast<size_t>(n));
    if (buffer.size() > kMaxLineBytes) {
      // No newline within the cap: drop the connection rather than
      // buffer an unbounded line.
      break;
    }
    size_t start = 0;
    for (;;) {
      size_t newline = buffer.find('\n', start);
      if (newline == std::string::npos) break;
      std::string line = buffer.substr(start, newline - start);
      start = newline + 1;
      if (!line.empty() && line.back() == '\r') line.pop_back();
      if (line.empty()) continue;
      std::string response = daemon->Handle(line, &session);
      response += '\n';
      size_t sent = 0;
      bool write_failed = false;
      while (sent < response.size()) {
        // MSG_NOSIGNAL: a peer that closed mid-response must surface as
        // a send error on this connection, not SIGPIPE-kill the daemon.
        ssize_t w = ::send(fd, response.data() + sent,
                           response.size() - sent, MSG_NOSIGNAL);
        if (w <= 0) {
          write_failed = true;
          break;
        }
        sent += static_cast<size_t>(w);
      }
      if (write_failed || daemon->shutdown.load(std::memory_order_relaxed)) {
        ::close(fd);
        connection->finished.store(true, std::memory_order_release);
        return;
      }
    }
    buffer.erase(0, start);
  }
  ::close(fd);
  connection->finished.store(true, std::memory_order_release);
}

int ServeTcp(Daemon* daemon, int port) {
  int listen_fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd < 0) {
    std::perror("rwld: socket");
    return 1;
  }
  int reuse = 1;
  ::setsockopt(listen_fd, SOL_SOCKET, SO_REUSEADDR, &reuse, sizeof(reuse));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = ::htonl(INADDR_LOOPBACK);
  addr.sin_port = ::htons(static_cast<uint16_t>(port));
  if (::bind(listen_fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    std::perror("rwld: bind");
    ::close(listen_fd);
    return 1;
  }
  if (::listen(listen_fd, 64) < 0) {
    std::perror("rwld: listen");
    ::close(listen_fd);
    return 1;
  }
  std::fprintf(stderr, "rwld: listening on 127.0.0.1:%d\n", port);

  std::vector<std::unique_ptr<Connection>> connections;
  auto reap_finished = [&connections] {
    for (auto it = connections.begin(); it != connections.end();) {
      if ((*it)->finished.load(std::memory_order_acquire)) {
        (*it)->thread.join();
        it = connections.erase(it);
      } else {
        ++it;
      }
    }
  };
  while (!daemon->shutdown.load(std::memory_order_relaxed)) {
    // Poll with a timeout so a SHUTDOWN request (handled on a connection
    // thread) stops the accept loop promptly; each tick also reaps
    // finished connection threads so a long-lived daemon stays bounded.
    fd_set read_fds;
    FD_ZERO(&read_fds);
    FD_SET(listen_fd, &read_fds);
    timeval timeout{0, 200000};  // 200 ms
    int ready = ::select(listen_fd + 1, &read_fds, nullptr, nullptr,
                         &timeout);
    reap_finished();
    if (ready <= 0) continue;
    int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd < 0) continue;
    auto connection = std::make_unique<Connection>();
    connection->fd = fd;
    Connection* raw = connection.get();
    connection->thread = std::thread(ServeConnection, daemon, raw);
    connections.push_back(std::move(connection));
  }
  ::close(listen_fd);
  // Unblock every idle connection's recv() so shutdown never waits on a
  // client that simply stays connected.
  for (auto& connection : connections) {
    if (!connection->finished.load(std::memory_order_acquire)) {
      ::shutdown(connection->fd, SHUT_RDWR);
    }
  }
  for (auto& connection : connections) connection->thread.join();
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  int port = 0;
  bool stdio = false;
  rwl::service::ServiceOptions options;
  options.inference.tolerances =
      rwl::semantics::ToleranceVector::Uniform(0.04);
  int nmax = 48;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return ++i < argc ? argv[i] : nullptr;
    };
    if (arg == "--port") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      port = std::atoi(v);
    } else if (arg == "--stdio") {
      stdio = true;
    } else if (arg == "--threads") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      options.scheduler.num_threads = std::atoi(v);
    } else if (arg == "--queue-depth") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      options.scheduler.max_queue_depth =
          static_cast<size_t>(std::atoll(v));
    } else if (arg == "--nmax") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      nmax = std::atoi(v);
    } else if (arg == "--plan") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      std::string mode = v;
      if (mode == "cost") {
        options.inference.plan_mode = rwl::PlanMode::kMinCost;
      } else if (mode != "fidelity") {
        return Usage(argv[0]);
      }
    } else {
      return Usage(argv[0]);
    }
  }
  if (stdio == (port > 0)) return Usage(argv[0]);  // exactly one mode

  // The rwlq sweep schedule, so a service answer matches the CLI's.
  options.inference.limit.domain_sizes.clear();
  for (int n = 8; n <= nmax; n = n < 16 ? n + 8 : n * 2) {
    options.inference.limit.domain_sizes.push_back(n);
  }
  if (options.inference.limit.domain_sizes.empty() ||
      options.inference.limit.domain_sizes.back() != nmax) {
    options.inference.limit.domain_sizes.push_back(nmax);
  }

  Daemon daemon(options);
  return stdio ? ServeStdio(&daemon) : ServeTcp(&daemon, port);
}
