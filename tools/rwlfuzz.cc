// rwlfuzz — differential fuzzing of the inference engines.
//
// Generates random knowledge bases and query batches from the src/workload
// generators, runs every applicable engine on each scenario through the
// cross-engine differential oracle (src/testing/differential.h), and on any
// disagreement greedily shrinks the scenario (src/testing/shrinker.h) and
// writes a minimized reproducer — a plain .rwl KB with //! directives —
// ready to check into tests/corpus/ where the corpus replay test
// regression-gates it forever.
//
// Modes:
//   (default)        generate & check scenarios
//   --replay PATH    replay a corpus file or directory
//   --self-test      harness self-check: a clean run must report zero
//                    disagreements, and a deliberately injected engine bug
//                    must be caught and shrunk to a tiny reproducer
//
// Options:
//   --checks LIST    comma-separated subset of {finite,pipeline,maxent,
//                    batch,vm,planner,service,replica,defaults,evidence,
//                    coverage}; empty = profile defaults
//   --seed S         master seed (default 20260730); every case derives its
//                    own RNG from (seed, case index), so any single case
//                    reproduces from the pair alone
//   --cases N        scenarios to generate (default 1000)
//   --profile P      unary | defaults | chain | nonunary | mixed |
//                    exceptions | evidence | refclass | calibrated | all
//   --mc-samples K   Monte-Carlo samples for non-unary oracles
//                    (default 20000; 0 disables the MC engine)
//   --out DIR        where reproducers are written (default tests/corpus)
//   --max-failures K stop after K failing scenarios (default 5)
//   --no-shrink      emit unshrunk reproducers
//   --no-emit        report failures without writing files
//   --verbose        per-case progress
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <random>
#include <string>
#include <vector>

#include "src/engines/exact_engine.h"
#include "src/engines/profile_engine.h"
#include "src/logic/intern.h"
#include "src/logic/printer.h"
#include "src/logic/transform.h"
#include "src/testing/buggy_engine.h"
#include "src/testing/corpus.h"
#include "src/testing/differential.h"
#include "src/testing/shrinker.h"
#include "src/workload/generators.h"

namespace {

using rwl::testing::CorpusCase;
using rwl::testing::DifferentialOptions;
using rwl::testing::DifferentialReport;
using rwl::testing::EngineSet;
using rwl::testing::Scenario;

struct Config {
  uint64_t seed = 20260730;
  int cases = 1000;
  std::string profile = "all";
  uint64_t mc_samples = 20000;
  std::string out_dir = "tests/corpus";
  int max_failures = 5;
  bool shrink = true;
  bool emit = true;
  bool verbose = false;
  std::string replay_path;
  bool self_test = false;
  // Comma-separated subset of kCheckNames; empty = the per-profile
  // defaults.
  std::string checks;
};

// The full check vocabulary — single-sourced so the validator and the
// filter below cannot drift (a name the validator accepts but the filter
// ignores would be a silent coverage loss).
constexpr const char* kCheckNames[] = {
    "finite", "pipeline", "maxent",   "batch",    "vm",      "planner",
    "service", "replica", "defaults", "evidence", "coverage"};

// Validates the --checks list; unknown names are a usage error (matching
// the corpus format's strictness), not a silent coverage loss.
bool ValidCheckList(const std::string& checks) {
  if (checks.empty()) return true;
  std::string token;
  for (size_t i = 0; i <= checks.size(); ++i) {
    if (i < checks.size() && checks[i] != ',') {
      token += checks[i];
      continue;
    }
    bool known = false;
    for (const char* name : kCheckNames) known = known || token == name;
    if (!known) {
      std::fprintf(stderr, "rwlfuzz: unknown check '%s'\n", token.c_str());
      return false;
    }
    token.clear();
  }
  return true;
}

void ApplyCheckFilter(const std::string& checks,
                      DifferentialOptions* options) {
  if (checks.empty()) return;
  auto enabled = [&](const char* name) {
    return ("," + checks + ",").find("," + std::string(name) + ",") !=
           std::string::npos;
  };
  options->check_pipeline = options->check_pipeline && enabled("pipeline");
  options->check_maxent = options->check_maxent && enabled("maxent");
  options->check_batch = options->check_batch && enabled("batch");
  options->check_vm = options->check_vm && enabled("vm");
  options->check_planner = options->check_planner && enabled("planner");
  options->check_service = options->check_service && enabled("service");
  options->check_replica = options->check_replica && enabled("replica");
  options->check_defaults = options->check_defaults && enabled("defaults");
  options->check_evidence = options->check_evidence && enabled("evidence");
  // coverage defaults OFF (it pays a ground-truth enumeration sweep per
  // query), so an explicit filter listing it turns it ON for every case —
  // and, like the others, omitting it turns it off even for the calibrated
  // profile.
  options->check_coverage = enabled("coverage");
}

int Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--seed S] [--cases N] [--profile P] [--mc-samples K]\n"
      "          [--checks LIST] [--out DIR] [--max-failures K]\n"
      "          [--no-shrink] [--no-emit] [--replay PATH] [--self-test]\n"
      "          [--verbose]\n"
      "profiles: unary defaults chain nonunary mixed exceptions evidence\n"
      "          refclass calibrated all\n"
      "checks:   finite pipeline maxent batch vm planner service replica\n"
      "          defaults evidence coverage\n",
      argv0);
  return 2;
}

int UniformInt(std::mt19937* rng, int lo, int hi) {
  std::uniform_int_distribution<int> dist(lo, hi);
  return dist(*rng);
}

// One scenario plus the oracle configuration it should run under.
struct GeneratedCase {
  Scenario scenario;
  DifferentialOptions options;
  uint64_t mc_samples = 0;  // 0 = deterministic engines only
};

// ---- scenario generators, one per profile ----

void RegisterUnaryVocabulary(int num_predicates, int num_constants,
                             Scenario* scenario) {
  // The full generator vocabulary, not just the mentioned symbols: unused
  // predicates/constants change the world space, and the engines must
  // agree on that too.
  for (const auto& p : rwl::workload::GeneratorPredicates(num_predicates)) {
    scenario->vocabulary.AddPredicate(p, 1);
  }
  for (const auto& c : rwl::workload::GeneratorConstants(num_constants)) {
    scenario->vocabulary.AddConstant(c);
  }
}

GeneratedCase GenerateUnary(std::mt19937* rng, bool defaults_heavy,
                            const Config& config) {
  rwl::workload::UnaryKbParams params;
  params.num_predicates = UniformInt(rng, 1, 3);
  params.num_constants = UniformInt(rng, 1, 2);
  params.num_statements = UniformInt(rng, 1, 3);
  params.num_facts = UniformInt(rng, 0, 2);
  params.default_fraction = defaults_heavy ? 0.8 : 0.3;
  params.max_depth = UniformInt(rng, 1, 2);
  // Proportion-heavy queries stress the popcount proportion kernels and
  // the counting-loop collapse; the vm check exercises their tail masks at
  // word-boundary domain sizes (DifferentialOptions.vm_extra_domain_sizes).
  params.proportion_query_bias = 0.6;

  GeneratedCase generated;
  generated.scenario.kb = rwl::workload::RandomUnaryKb(params, rng);
  generated.scenario.queries = rwl::workload::RandomQueryBatch(
      params, UniformInt(rng, 1, 4), rng);
  RegisterUnaryVocabulary(params.num_predicates, params.num_constants,
                          &generated.scenario);
  rwl::logic::RegisterSymbols(generated.scenario.kb,
                              &generated.scenario.vocabulary);
  for (const auto& query : generated.scenario.queries) {
    rwl::logic::RegisterSymbols(query, &generated.scenario.vocabulary);
  }

  const double tolerances[] = {0.1, 0.2, 0.3};
  generated.options.tolerances = rwl::semantics::ToleranceVector::Uniform(
      tolerances[UniformInt(rng, 0, 2)]);
  generated.options.domain_sizes = {2, 3, 4};
  // The profile DFS is combinatorial in (N, 2^predicates): shrink the
  // limit-level sweeps for the largest vocabularies so a fuzz case stays
  // in the tens of milliseconds.
  if (params.num_predicates >= 3) {
    generated.options.pipeline_domain_sizes = {6, 9, 12};
  }
  (void)config;
  return generated;
}

GeneratedCase GenerateChain(std::mt19937* rng, const Config& config) {
  rwl::workload::ChainKb chain =
      rwl::workload::RandomChainKb(UniformInt(rng, 2, 3), rng);
  GeneratedCase generated;
  generated.scenario.kb = chain.kb;
  generated.scenario.queries = {chain.query};
  rwl::logic::RegisterSymbols(chain.kb, &generated.scenario.vocabulary);
  rwl::logic::RegisterSymbols(chain.query, &generated.scenario.vocabulary);
  generated.options.tolerances =
      rwl::semantics::ToleranceVector::Uniform(0.15);
  generated.options.domain_sizes = {2, 3};
  // Chains declare depth+1 unary predicates (up to 16 atoms); keep the
  // limit-level sweeps shallow, like the large unary vocabularies.
  generated.options.pipeline_domain_sizes = {6, 9, 12};
  (void)config;
  return generated;
}

GeneratedCase GenerateNonUnary(std::mt19937* rng, bool mixed,
                               const Config& config) {
  rwl::workload::MixedKbParams params;
  params.num_unary = UniformInt(rng, 1, 2);
  params.num_binary = 1;
  params.num_constants = UniformInt(rng, 1, 2);
  params.num_facts = UniformInt(rng, 1, 2);
  params.num_axioms = mixed ? 0 : UniformInt(rng, 0, 2);
  params.num_statements = mixed ? UniformInt(rng, 1, 2) : UniformInt(rng, 0, 1);
  params.max_depth = 2;

  GeneratedCase generated;
  generated.scenario.kb = rwl::workload::RandomMixedKb(params, rng);
  int num_queries = UniformInt(rng, 1, 3);
  for (int i = 0; i < num_queries; ++i) {
    generated.scenario.queries.push_back(
        rwl::workload::RandomMixedQuery(params, rng));
  }
  RegisterUnaryVocabulary(params.num_unary, params.num_constants,
                          &generated.scenario);
  for (const auto& r :
       rwl::workload::GeneratorBinaryPredicates(params.num_binary)) {
    generated.scenario.vocabulary.AddPredicate(r, 2);
  }
  rwl::logic::RegisterSymbols(generated.scenario.kb,
                              &generated.scenario.vocabulary);
  for (const auto& query : generated.scenario.queries) {
    rwl::logic::RegisterSymbols(query, &generated.scenario.vocabulary);
  }

  generated.options.tolerances =
      rwl::semantics::ToleranceVector::Uniform(0.2);
  // Binary predicates: the exact engine only reaches tiny N, and the
  // limit-level pipeline checks would route through expensive exact
  // sweeps while the symbolic side rarely converges — the finite oracle
  // (exact vs Monte Carlo) is the signal here.
  generated.options.domain_sizes = {2, 3};
  generated.options.check_pipeline = false;
  generated.options.check_batch = false;
  generated.options.check_maxent = false;
  // Like the other limit-level checks: binary predicates route the
  // service rebuilds through expensive exact sweeps for little signal.
  generated.options.check_service = false;
  generated.options.check_replica = false;
  generated.mc_samples = config.mc_samples;
  return generated;
}

// Penguin-style exception chains: the defaults family applies, so the
// `defaults` differential check is the point of this profile.
GeneratedCase GenerateExceptions(std::mt19937* rng, const Config& config) {
  rwl::workload::ExceptionChainParams params;
  params.depth = UniformInt(rng, 2, 4);
  rwl::workload::ExceptionChainKb chain =
      rwl::workload::RandomExceptionChainKb(params, rng);

  GeneratedCase generated;
  generated.scenario.kb = chain.kb;
  generated.scenario.queries = chain.queries;
  rwl::logic::RegisterSymbols(chain.kb, &generated.scenario.vocabulary);
  for (const auto& query : chain.queries) {
    rwl::logic::RegisterSymbols(query, &generated.scenario.vocabulary);
  }
  generated.options.tolerances =
      rwl::semantics::ToleranceVector::Uniform(0.15);
  generated.options.domain_sizes = {2, 3};
  // depth+1 unary predicates: keep the limit-level sweeps shallow like the
  // other wide vocabularies.
  generated.options.pipeline_domain_sizes = {6, 9, 12};
  (void)config;
  return generated;
}

// Theorem 5.26 instances: multiple independent mass functions over a
// shared frame, with the essential-disjointness conjuncts emitted.  The
// `evidence` differential check pits the evidence strategy against the
// symbolic engine's independent Dempster matcher.
GeneratedCase GenerateEvidence(std::mt19937* rng, const Config& config) {
  rwl::workload::EvidenceKbParams params;
  params.num_sources = UniformInt(rng, 2, 3);
  rwl::workload::EvidenceKb kb = rwl::workload::RandomEvidenceKb(params, rng);

  GeneratedCase generated;
  generated.scenario.kb = kb.kb;
  generated.scenario.queries = {kb.query};
  rwl::logic::RegisterSymbols(kb.kb, &generated.scenario.vocabulary);
  rwl::logic::RegisterSymbols(kb.query, &generated.scenario.vocabulary);
  generated.options.tolerances =
      rwl::semantics::ToleranceVector::Uniform(0.15);
  generated.options.domain_sizes = {2, 3};
  generated.options.pipeline_domain_sizes = {6, 9, 12};
  (void)config;
  return generated;
}

// Competing reference classes WITHOUT the disjointness conjuncts —
// deliberately outside the Theorem 5.26 shape, exercising the evidence
// strategy's rejection path and the planner's fallback routing.
GeneratedCase GenerateRefClass(std::mt19937* rng, const Config& config) {
  rwl::workload::ReferenceClassKb kb =
      rwl::workload::RandomReferenceClassKb(rng);

  GeneratedCase generated;
  generated.scenario.kb = kb.kb;
  generated.scenario.queries = {kb.query};
  rwl::logic::RegisterSymbols(kb.kb, &generated.scenario.vocabulary);
  rwl::logic::RegisterSymbols(kb.query, &generated.scenario.vocabulary);
  generated.options.tolerances =
      rwl::semantics::ToleranceVector::Uniform(0.2);
  generated.options.domain_sizes = {2, 3, 4};
  (void)config;
  return generated;
}

// Calibrated-interval scenarios: ordinary unary KBs answered at a
// confidence level, with the coverage check verifying the interval
// against ground-truth enumeration over the same schedule.
GeneratedCase GenerateCalibrated(std::mt19937* rng, const Config& config) {
  GeneratedCase generated =
      GenerateUnary(rng, /*defaults_heavy=*/false, config);
  generated.options.check_coverage = true;
  // 0.80, 0.85, 0.90 or 0.95.
  generated.options.coverage_confidence =
      0.80 + 0.05 * UniformInt(rng, 0, 3);
  // The ground-truth side replays the schedule on the enumeration engine:
  // keep it within the exact odometer's reach.
  generated.options.pipeline_domain_sizes = {4, 6, 8};
  return generated;
}

GeneratedCase GenerateCase(const std::string& profile, uint64_t seed,
                           int index, const Config& config,
                           std::string* chosen_profile) {
  std::mt19937 rng(static_cast<uint32_t>(
      rwl::logic::HashMix(seed * 0x9e3779b97f4a7c15ull + index)));
  std::vector<std::string> pool;
  if (profile == "all") {
    pool = {"unary",      "defaults", "chain",    "nonunary", "mixed",
            "exceptions", "evidence", "refclass", "calibrated"};
  } else {
    pool = {profile};
  }
  *chosen_profile = pool[index % pool.size()];

  GeneratedCase generated;
  if (*chosen_profile == "unary") {
    generated = GenerateUnary(&rng, /*defaults_heavy=*/false, config);
  } else if (*chosen_profile == "defaults") {
    generated = GenerateUnary(&rng, /*defaults_heavy=*/true, config);
  } else if (*chosen_profile == "chain") {
    generated = GenerateChain(&rng, config);
  } else if (*chosen_profile == "nonunary") {
    generated = GenerateNonUnary(&rng, /*mixed=*/false, config);
  } else if (*chosen_profile == "exceptions") {
    generated = GenerateExceptions(&rng, config);
  } else if (*chosen_profile == "evidence") {
    generated = GenerateEvidence(&rng, config);
  } else if (*chosen_profile == "refclass") {
    generated = GenerateRefClass(&rng, config);
  } else if (*chosen_profile == "calibrated") {
    generated = GenerateCalibrated(&rng, config);
  } else {
    generated = GenerateNonUnary(&rng, /*mixed=*/true, config);
  }
  generated.scenario.provenance = "seed=" + std::to_string(seed) +
                                  " case=" + std::to_string(index) +
                                  " profile=" + *chosen_profile;
  // The sampling budget governs every Monte-Carlo comparison, including
  // the planner check's forced-montecarlo run (0 disables it).
  generated.options.planner_montecarlo_samples = config.mc_samples;
  ApplyCheckFilter(config.checks, &generated.options);
  return generated;
}

// ---- failure handling ----

std::string EmitReproducer(const Config& config, const GeneratedCase& failed,
                           int index, const std::string& summary_head) {
  CorpusCase corpus_case = rwl::testing::CaseFromScenario(
      failed.scenario, failed.options, failed.mc_samples);
  corpus_case.seed = config.seed;
  corpus_case.notes.insert(corpus_case.notes.begin(), summary_head);
  std::string path = config.out_dir + "/fuzz_s" +
                     std::to_string(config.seed) + "_c" +
                     std::to_string(index) + ".rwl";
  std::string error;
  if (!rwl::testing::WriteCaseFile(path, corpus_case, &error)) {
    std::fprintf(stderr, "rwlfuzz: %s\n", error.c_str());
    return "";
  }
  return path;
}

// Runs one generated case; returns true when it passed.
bool RunCase(const Config& config, GeneratedCase generated, int index) {
  EngineSet engines =
      rwl::testing::DefaultEngineSet(generated.mc_samples);
  DifferentialReport report = rwl::testing::RunDifferential(
      generated.scenario, engines.pointers(), generated.options);
  if (report.ok()) {
    if (config.verbose) {
      std::printf("ok    %s (%d comparisons)\n",
                  generated.scenario.provenance.c_str(),
                  report.comparisons);
    }
    return true;
  }

  std::printf("FAIL  %s\n%s", generated.scenario.provenance.c_str(),
              report.Summary(generated.scenario).c_str());

  if (config.shrink) {
    auto still_fails = [&](const Scenario& candidate) {
      return !rwl::testing::RunDifferential(candidate, engines.pointers(),
                                            generated.options)
                  .ok();
    };
    rwl::testing::ShrinkOutcome shrunk =
        rwl::testing::Shrink(generated.scenario, still_fails);
    std::printf("shrunk to %d conjunct(s), %zu query(ies) after %d predicate runs:\n%s",
                shrunk.kb_conjuncts, shrunk.scenario.queries.size(),
                shrunk.evaluations,
                rwl::testing::Describe(shrunk.scenario).c_str());
    generated.scenario = std::move(shrunk.scenario);
  }
  if (config.emit) {
    std::string head = report.disagreements.empty()
                           ? std::string("disagreement")
                           : "[" + report.disagreements[0].check + "] " +
                                 report.disagreements[0].lhs + " vs " +
                                 report.disagreements[0].rhs;
    std::string path = EmitReproducer(config, generated, index, head);
    if (!path.empty()) {
      std::printf("reproducer written to %s\n", path.c_str());
    }
  }
  return false;
}

int FuzzMain(const Config& config) {
  int failures = 0;
  int ran = 0;
  for (int index = 0; index < config.cases; ++index) {
    std::string chosen;
    GeneratedCase generated =
        GenerateCase(config.profile, config.seed, index, config, &chosen);
    ++ran;
    if (!RunCase(config, std::move(generated), index)) {
      if (++failures >= config.max_failures) {
        std::printf("stopping after %d failure(s)\n", failures);
        break;
      }
    }
  }
  std::printf("rwlfuzz: %d case(s), %d failure(s), seed %llu\n", ran,
              failures, static_cast<unsigned long long>(config.seed));
  return failures == 0 ? 0 : 1;
}

int ReplayMain(const Config& config) {
  std::vector<std::string> files;
  if (config.replay_path.size() > 4 &&
      config.replay_path.substr(config.replay_path.size() - 4) == ".rwl") {
    files = {config.replay_path};
  } else {
    files = rwl::testing::ListCorpusFiles(config.replay_path);
  }
  if (files.empty()) {
    std::fprintf(stderr, "rwlfuzz: no corpus files under '%s'\n",
                 config.replay_path.c_str());
    return 2;
  }
  int failures = 0;
  for (const auto& path : files) {
    CorpusCase corpus_case;
    Scenario scenario;
    std::string error;
    if (!rwl::testing::LoadCaseFile(path, &corpus_case, &error) ||
        !rwl::testing::CaseToScenario(corpus_case, &scenario, &error)) {
      std::fprintf(stderr, "rwlfuzz: %s\n", error.c_str());
      ++failures;
      continue;
    }
    EngineSet engines =
        rwl::testing::DefaultEngineSet(corpus_case.montecarlo_samples);
    DifferentialReport report = rwl::testing::RunDifferential(
        scenario, engines.pointers(),
        rwl::testing::ReplayOptions(corpus_case));
    if (report.ok()) {
      std::printf("ok    %s (%d comparisons)\n", path.c_str(),
                  report.comparisons);
    } else {
      std::printf("FAIL  %s\n%s", path.c_str(),
                  report.Summary(scenario).c_str());
      ++failures;
    }
  }
  std::printf("rwlfuzz: replayed %zu case(s), %d failure(s)\n", files.size(),
              failures);
  return failures == 0 ? 0 : 1;
}

// Harness self-check.  Phase 1: the real engines agree on a bounded clean
// run.  Phase 2: a deliberately skewed profile engine must be caught by
// the finite oracle and shrunk to a ≤5-conjunct reproducer.
int SelfTestMain(const Config& config) {
  // Phase 1: clean run.
  Config clean = config;
  clean.cases = 120;
  clean.emit = false;
  clean.shrink = false;
  clean.max_failures = 1;
  clean.profile = "all";
  std::printf("self-test phase 1: clean differential run...\n");
  if (FuzzMain(clean) != 0) {
    std::fprintf(stderr,
                 "self-test FAILED: real engines disagreed on a clean run\n");
    return 1;
  }

  // Phase 2: injected bug.
  std::printf("self-test phase 2: injected engine bug...\n");
  rwl::engines::ExactEngine exact;
  rwl::engines::ProfileEngine profile;
  rwl::testing::SkewOnOrEngine skewed(&profile);
  std::vector<const rwl::engines::FiniteEngine*> buggy = {&exact, &skewed};

  DifferentialOptions finite_only;
  finite_only.check_pipeline = false;
  finite_only.check_batch = false;
  finite_only.check_maxent = false;
  finite_only.check_service = false;
  finite_only.check_replica = false;

  for (int index = 0; index < 400; ++index) {
    std::string chosen;
    GeneratedCase generated = GenerateCase("unary", config.seed + 1, index,
                                           config, &chosen);
    DifferentialOptions options = finite_only;
    options.tolerances = generated.options.tolerances;
    options.domain_sizes = generated.options.domain_sizes;
    DifferentialReport report = rwl::testing::RunDifferential(
        generated.scenario, buggy, options);
    if (report.ok()) continue;

    std::printf("injected bug caught at case %d:\n%s", index,
                report.Summary(generated.scenario).c_str());
    auto still_fails = [&](const Scenario& candidate) {
      return !rwl::testing::RunDifferential(candidate, buggy, options).ok();
    };
    rwl::testing::ShrinkOutcome shrunk =
        rwl::testing::Shrink(generated.scenario, still_fails);
    std::printf("shrunk to %d conjunct(s) after %d predicate runs:\n%s",
                shrunk.kb_conjuncts, shrunk.evaluations,
                rwl::testing::Describe(shrunk.scenario).c_str());
    if (shrunk.kb_conjuncts > 5) {
      std::fprintf(stderr,
                   "self-test FAILED: reproducer has %d conjuncts (> 5)\n",
                   shrunk.kb_conjuncts);
      return 1;
    }
    std::printf("self-test passed\n");
    return 0;
  }
  std::fprintf(stderr,
               "self-test FAILED: injected bug never caught in 400 cases\n");
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  Config config;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return ++i < argc ? argv[i] : nullptr;
    };
    if (arg == "--seed") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      config.seed = std::strtoull(v, nullptr, 10);
    } else if (arg == "--cases") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      config.cases = std::atoi(v);
    } else if (arg == "--profile") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      config.profile = v;
    } else if (arg == "--mc-samples") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      config.mc_samples = std::strtoull(v, nullptr, 10);
    } else if (arg == "--out") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      config.out_dir = v;
    } else if (arg == "--max-failures") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      config.max_failures = std::atoi(v);
    } else if (arg == "--checks") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      config.checks = v;
    } else if (arg == "--no-shrink") {
      config.shrink = false;
    } else if (arg == "--no-emit") {
      config.emit = false;
    } else if (arg == "--replay") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      config.replay_path = v;
    } else if (arg == "--self-test") {
      config.self_test = true;
    } else if (arg == "--verbose") {
      config.verbose = true;
    } else {
      return Usage(argv[0]);
    }
  }
  const std::string known[] = {"unary",      "defaults", "chain",
                               "nonunary",   "mixed",    "exceptions",
                               "evidence",   "refclass", "calibrated",
                               "all"};
  bool known_profile = false;
  for (const auto& p : known) known_profile = known_profile || p == config.profile;
  if (!known_profile) return Usage(argv[0]);
  if (!ValidCheckList(config.checks)) return Usage(argv[0]);

  if (config.self_test) return SelfTestMain(config);
  if (!config.replay_path.empty()) return ReplayMain(config);
  return FuzzMain(config);
}
